// Bit-identity suite for the batched sibling-lockstep mapping kernel.
//
// A sibling-batch session (ListScheduler::begin_sibling_batch +
// makespan_sibling) must be indistinguishable from a full list-scheduling
// pass AND from the per-mutant delta path: same fitness bits, same
// rejection counts, same evolution trajectory. These tests drive sibling
// fans over every corpus graph class and both processor-selection
// policies with all three mutation shapes (single-gene, multi-gene, and
// deep-resume mutants whose first divergence sits late in the parent's
// pop order), compare the bounded/rejection paths exactly, pin the
// kernel against the preserved ReferenceMapper oracle, pin the
// profitability-gate boundary, and check the session protocol's
// fallback behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "../common/test_graphs.hpp"
#include "core/problem_instance.hpp"
#include "daggen/corpus.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/reference_mapper.hpp"
#include "support/rng.hpp"

namespace ptgsched {
namespace {

const std::vector<std::string>& corpus_classes() {
  static const std::vector<std::string> classes = {"fft", "strassen",
                                                   "layered", "irregular"};
  return classes;
}

Allocation random_allocation(std::size_t n, int P, Rng& rng) {
  Allocation alloc(n);
  for (auto& s : alloc) s = static_cast<int>(rng.uniform_int(1, P));
  return alloc;
}

/// The three mutation shapes the batch path must handle. Newly drawn
/// sizes may coincide with the old value, so `touched` is deliberately a
/// superset of the real changes — exactly the contract the engine
/// relies on.
enum class Shape { kSingleGene, kMultiGene, kDeepResume };

void mutate_shaped(Allocation& alloc, int P, Shape shape,
                   const EvalTrace& trace, Rng& rng,
                   std::vector<TaskId>& touched) {
  touched.clear();
  const std::size_t n = alloc.size();
  switch (shape) {
    case Shape::kSingleGene: {
      const std::size_t pos = rng.index(n);
      alloc[pos] = static_cast<int>(rng.uniform_int(1, P));
      touched.push_back(static_cast<TaskId>(pos));
      break;
    }
    case Shape::kMultiGene: {
      const std::size_t count = 2 + rng.index(5);
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t pos = rng.index(n);
        alloc[pos] = static_cast<int>(rng.uniform_int(1, P));
        touched.push_back(static_cast<TaskId>(pos));
      }
      break;
    }
    case Shape::kDeepResume: {
      // Mutate a gene popped near the END of the parent's pass, so the
      // first divergent decision is deep: the certified prefix covers
      // almost the whole sequence and the kernel should resume (or
      // replay) rather than fall back to a full pass.
      const std::size_t tail = 1 + rng.index(std::min<std::size_t>(4, n));
      const TaskId pos = static_cast<TaskId>(trace.pop_order[n - tail]);
      alloc[pos] = static_cast<int>(rng.uniform_int(1, P));
      touched.push_back(pos);
      break;
    }
  }
}

TEST(BatchedIdentity, SiblingGroupsAreBitIdentical) {
  const Cluster c = chti();
  const SyntheticModel model;
  std::size_t total_replayed = 0;
  std::size_t total_resumed = 0;
  for (const std::string& cls : corpus_classes()) {
    const auto graphs = corpus_by_name(cls, 40, 2, 911);
    for (const ProcessorSelection policy :
         {ProcessorSelection::EarliestAvailable,
          ProcessorSelection::BestFit}) {
      ListSchedulerOptions opts;
      opts.selection = policy;
      for (const auto& g : graphs) {
        const auto pi = ProblemInstance::borrow(g, model, c);
        ListScheduler full(pi, opts);
        ListScheduler delta(pi, opts);
        ListScheduler batch(pi, opts);
        ListScheduler tracer(pi, opts);
        Rng rng(derive_seed(52, g.num_tasks(),
                            static_cast<std::uint64_t>(policy)));
        const Allocation parent =
            random_allocation(g.num_tasks(), c.num_processors(), rng);
        EvalTrace trace;
        const double base = tracer.makespan_traced(parent, trace);
        ASSERT_EQ(base, full.makespan(parent));
        ASSERT_TRUE(batch.begin_sibling_batch(trace));
        // A whole fan of siblings of ONE parent, in lockstep, cycling
        // the three mutation shapes.
        std::vector<TaskId> touched;
        for (int k = 0; k < 30; ++k) {
          Allocation child = parent;
          const auto shape = static_cast<Shape>(k % 3);
          mutate_shaped(child, c.num_processors(), shape, trace, rng,
                        touched);
          const double want = full.makespan(child);
          const double via_delta =
              delta.makespan_delta(child, touched, trace);
          const double via_sibling =
              batch.makespan_sibling(child, touched, trace);
          // Bitwise equality, not approximate: every path replays the
          // exact same floating-point operations.
          ASSERT_EQ(want, via_sibling)
              << cls << " sibling " << k << " shape "
              << static_cast<int>(shape) << " policy "
              << static_cast<int>(policy);
          ASSERT_EQ(via_delta, via_sibling)
              << cls << " sibling " << k << " shape "
              << static_cast<int>(shape);
        }
        total_replayed += batch.kernel().delta_replayed_count();
        total_resumed += batch.kernel().delta_resumed_count();
      }
    }
  }
  // The deep-resume shape must actually have exercised the heap-free
  // replay drive (and the heap resume must fire too) — otherwise the
  // suite would pass while silently running full passes everywhere.
  EXPECT_GT(total_replayed, 0u);
  EXPECT_GT(total_resumed, 0u);
}

TEST(BatchedIdentity, BoundedSiblingsAgreeIncludingRejectionCounts) {
  const Cluster c = chti();
  const SyntheticModel model;
  for (const std::string& cls : corpus_classes()) {
    const auto graphs = corpus_by_name(cls, 40, 2, 912);
    for (const ProcessorSelection policy :
         {ProcessorSelection::EarliestAvailable,
          ProcessorSelection::BestFit}) {
      ListSchedulerOptions opts;
      opts.selection = policy;
      for (const auto& g : graphs) {
        const auto pi = ProblemInstance::borrow(g, model, c);
        // Separate schedulers so the rejection counters can be compared
        // one-to-one: `full` only ever runs complete bounded passes,
        // `batch` only sibling ones.
        ListScheduler full(pi, opts);
        ListScheduler batch(pi, opts);
        ListScheduler tracer(pi, opts);
        Rng rng(derive_seed(53, g.num_tasks(),
                            static_cast<std::uint64_t>(policy)));
        const Allocation parent =
            random_allocation(g.num_tasks(), c.num_processors(), rng);
        EvalTrace trace;
        const double base = tracer.makespan_traced(parent, trace);
        ASSERT_TRUE(batch.begin_sibling_batch(trace));
        std::vector<TaskId> touched;
        for (int k = 0; k < 20; ++k) {
          Allocation child = parent;
          const auto shape = static_cast<Shape>(k % 3);
          mutate_shaped(child, c.num_processors(), shape, trace, rng,
                        touched);
          // Sweep bounds below, at, and above the parent makespan so the
          // fan exercises accept, reject, and the exact boundary.
          for (const double factor : {0.7, 0.95, 1.0, 1.05}) {
            const double bound = base * factor;
            const double a = full.makespan_bounded(child, bound);
            const double b =
                batch.makespan_sibling(child, touched, trace, bound);
            ASSERT_EQ(a, b) << cls << " bound factor " << factor;
          }
        }
        // Every bounded pass must have made the same accept/reject
        // decision on both paths.
        EXPECT_EQ(full.rejected_count(), batch.rejected_count());
      }
    }
  }
}

TEST(BatchedIdentity, SiblingsMatchReferenceMapperOracle) {
  const Cluster c = chti();
  const SyntheticModel model;
  for (const std::string& cls : corpus_classes()) {
    const auto graphs = corpus_by_name(cls, 40, 2, 913);
    for (const ProcessorSelection policy :
         {ProcessorSelection::EarliestAvailable,
          ProcessorSelection::BestFit}) {
      ListSchedulerOptions opts;
      opts.selection = policy;
      for (const auto& g : graphs) {
        const auto pi = ProblemInstance::borrow(g, model, c);
        ListScheduler batch(pi, opts);
        ListScheduler tracer(pi, opts);
        ReferenceMapper oracle(pi, opts);
        Rng rng(derive_seed(54, g.num_tasks(),
                            static_cast<std::uint64_t>(policy)));
        const Allocation parent =
            random_allocation(g.num_tasks(), c.num_processors(), rng);
        EvalTrace trace;
        (void)tracer.makespan_traced(parent, trace);
        ASSERT_TRUE(batch.begin_sibling_batch(trace));
        std::vector<TaskId> touched;
        for (int k = 0; k < 9; ++k) {
          Allocation child = parent;
          const auto shape = static_cast<Shape>(k % 3);
          mutate_shaped(child, c.num_processors(), shape, trace, rng,
                        touched);
          const double want = oracle.makespan(child);
          ASSERT_EQ(want, batch.makespan_sibling(child, touched, trace));
          // Bounded runs agree too, including the rejection decision.
          for (const double factor : {0.8, 1.0, 1.2}) {
            ASSERT_EQ(
                oracle.makespan_bounded(child, want * factor),
                batch.makespan_sibling(child, touched, trace,
                                       want * factor));
          }
        }
        EXPECT_EQ(oracle.rejected_count(), batch.rejected_count());
      }
    }
  }
}

TEST(BatchedIdentity, ProfitabilityGateBoundaryIsPinned) {
  // Exactly 100 tasks on 16 processors: the regression anchor for the
  // measured cost model that replaced the old hard resume gate. With
  // kRestorePerItem == kResetPerItem the restore/reset terms cancel and
  // the gate reduces to: profitable <=> skipped_pops >
  // pending - kFullBlPops*n + 4*kRestorePerItem*ready_size. For the
  // delta path's pre-patch decision (pending = kPatchCertifyPops*n = 30,
  // empty snapshot ready queue) that boundary is skipped_pops == 15/16.
  Ptg g("layered100");
  std::vector<TaskId> prev;
  for (int layer = 0; layer < 10; ++layer) {
    std::vector<TaskId> cur;
    for (int i = 0; i < 10; ++i) {
      cur.push_back(g.add_task(testutil::simple_task(
          "t" + std::to_string(layer) + "_" + std::to_string(i), 1.0)));
      for (const TaskId p : prev) g.add_edge(p, cur.back());
    }
    prev = std::move(cur);
  }
  ASSERT_EQ(g.num_tasks(), 100u);
  const Cluster c = testutil::unit_cluster(16);
  const testutil::FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  ListScheduler sched(pi);
  const MappingKernel& kernel = sched.kernel();

  const double pending = MappingKernel::kPatchCertifyPops * 100.0;
  // Skipping 15 pops does not pay for the pending certification work...
  EXPECT_FALSE(kernel.delta_profitable(15, /*replay=*/false,
                                       /*ready_size=*/0, pending));
  // ...but 16 does: the old hard gate (resume < max(interval, n/4))
  // would have rejected everything below 25 here.
  EXPECT_TRUE(kernel.delta_profitable(16, /*replay=*/false,
                                      /*ready_size=*/0, pending));
  // A fully certified replay is always profitable, even from pop 0: it
  // skips the bottom-level recomputation and drives heap-free.
  EXPECT_TRUE(kernel.delta_profitable(0, /*replay=*/true,
                                      /*ready_size=*/0, 0.0));
  // A large snapshot ready queue shifts the boundary: each ready entry
  // charges 4 restore items against the resume.
  EXPECT_FALSE(kernel.delta_profitable(16, /*replay=*/false,
                                       /*ready_size=*/100, pending));
}

TEST(BatchedIdentity, SessionProtocolFallsBackAndReopens) {
  const Cluster c = chti();
  const SyntheticModel model;
  const auto graphs = irregular_corpus(35, 1, 914);
  const auto pi = ProblemInstance::borrow(graphs.front(), model, c);
  ListScheduler sched(pi);
  ListScheduler probe(pi);
  Rng rng(915);
  const Allocation parent =
      random_allocation(pi->num_tasks(), c.num_processors(), rng);
  EvalTrace trace;
  (void)probe.makespan_traced(parent, trace);

  Allocation child = parent;
  std::vector<TaskId> touched;
  mutate_shaped(child, c.num_processors(), Shape::kMultiGene, trace, rng,
                touched);
  const double want = probe.makespan(child);

  // Never-built trace: begin refuses, sibling calls fall back to a
  // bit-identical full pass.
  const EvalTrace empty;
  EXPECT_FALSE(sched.begin_sibling_batch(empty));
  EXPECT_EQ(want, sched.makespan_sibling(child, touched, empty));

  // A live session answers from the lockstep path...
  ASSERT_TRUE(sched.begin_sibling_batch(trace));
  EXPECT_EQ(want, sched.makespan_sibling(child, touched, trace));

  // ...and any full-path evaluation in between closes it (times_ no
  // longer describes the parent), after which sibling calls fall back
  // to full passes — still bit-identical — until the session reopens.
  const Allocation other =
      random_allocation(pi->num_tasks(), c.num_processors(), rng);
  (void)sched.makespan(other);
  EXPECT_EQ(want, sched.makespan_sibling(child, touched, trace));

  ASSERT_TRUE(sched.begin_sibling_batch(trace));
  EXPECT_EQ(want, sched.makespan_sibling(child, touched, trace));

  // Reproducing the parent exactly (no effective change) is the
  // resume-from-the-end shortcut; it must honor bounds like a full
  // bounded pass.
  EXPECT_EQ(probe.makespan(parent),
            sched.makespan_sibling(parent, touched, trace));
  const double base = probe.makespan(parent);
  ListScheduler bounded_full(pi);
  EXPECT_EQ(bounded_full.makespan_bounded(parent, base * 0.9),
            sched.makespan_sibling(parent, {}, trace, base * 0.9));
}

}  // namespace
}  // namespace ptgsched
