// Tests for the shared MappingKernel: single- and multi-cluster schedulers
// must agree on a one-cluster platform (they run the same engine), the
// value and placement paths must report bit-identical makespans for both
// processor-selection policies, and the rejection counter must support
// exact reset semantics.

#include "sched/mapping_kernel.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "../common/test_graphs.hpp"
#include "core/problem_instance.hpp"
#include "daggen/corpus.hpp"
#include "platform/multi_cluster.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/multi_cluster_scheduler.hpp"
#include "sched/validate.hpp"
#include "support/rng.hpp"

namespace ptgsched {
namespace {

using testutil::FixedTimeModel;
using testutil::unit_cluster;

constexpr double kInf = std::numeric_limits<double>::infinity();

Allocation random_allocation(const Ptg& g, int max_size, Rng& rng) {
  Allocation alloc(g.num_tasks());
  for (auto& s : alloc) s = static_cast<int>(rng.uniform_int(1, max_size));
  return alloc;
}

TEST(MappingKernel, EarliestStartIsAPureQuery) {
  const Ptg g = testutil::chain3();
  const Cluster c = unit_cluster(4);
  const FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  MappingKernel core(*pi, {MappingLane{4, 0}});
  // Probing must not mutate lane state: repeated queries agree.
  EXPECT_DOUBLE_EQ(core.earliest_start(0, 2, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(core.earliest_start(0, 2, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(core.earliest_start(0, 4, 0.0), 0.0);
}

TEST(MappingKernel, SingleAndMultiClusterAgreeOnOneClusterPlatform) {
  const auto graphs = irregular_corpus(40, 3, 77);
  const Cluster c = chti();
  const SyntheticModel model;
  const MultiClusterPlatform platform({c});
  for (const auto& g : graphs) {
    const auto pi = ProblemInstance::borrow(g, model, c);
    ListScheduler single(pi);
    Rng rng(g.num_tasks());
    for (int trial = 0; trial < 5; ++trial) {
      const Allocation alloc =
          random_allocation(g, c.num_processors(), rng);
      // The multi-cluster engine takes explicit priority times; feed it
      // the same per-allocation times the single-cluster engine derives.
      std::vector<double> times(g.num_tasks());
      McAllocation mc;
      mc.sizes.assign(g.num_tasks(), std::vector<int>(1));
      for (TaskId v = 0; v < g.num_tasks(); ++v) {
        times[v] = pi->time(v, alloc[v]);
        mc.sizes[v][0] = alloc[v];
      }
      const Schedule s1 = single.build_schedule(alloc);
      const Schedule s2 = map_mc_allocation(g, mc, model, platform, times);
      ASSERT_EQ(s1.num_tasks(), s2.num_tasks());
      EXPECT_DOUBLE_EQ(s1.makespan(), s2.makespan());
      for (TaskId v = 0; v < g.num_tasks(); ++v) {
        EXPECT_DOUBLE_EQ(s1.placement(v).start, s2.placement(v).start);
        EXPECT_DOUBLE_EQ(s1.placement(v).finish, s2.placement(v).finish);
        EXPECT_EQ(s1.placement(v).processors, s2.placement(v).processors);
      }
    }
  }
}

TEST(MappingKernel, ValueAndPlacementPathsAgreeForBothPolicies) {
  const auto graphs = irregular_corpus(50, 3, 78);
  const Cluster c = chti();
  const SyntheticModel model;
  for (const ProcessorSelection policy :
       {ProcessorSelection::EarliestAvailable, ProcessorSelection::BestFit}) {
    ListSchedulerOptions opts;
    opts.selection = policy;
    for (const auto& g : graphs) {
      ListScheduler sched(g, c, model, opts);
      Rng rng(g.num_tasks() + static_cast<std::size_t>(policy));
      for (int trial = 0; trial < 5; ++trial) {
        const Allocation alloc =
            random_allocation(g, c.num_processors(), rng);
        const Schedule s = sched.build_schedule(alloc);
        // Value path (no Schedule) and placement path must match bit for
        // bit: the multiset of free times evolves identically.
        EXPECT_DOUBLE_EQ(sched.makespan(alloc), s.makespan());
        validate_schedule(s, g, alloc, model, c);
      }
    }
  }
}

TEST(MappingKernel, RejectionCounterResetsExactly) {
  const Ptg g = testutil::chain3();  // sequential: makespan 6 on all-ones
  const Cluster c = unit_cluster(2);
  const FixedTimeModel model;
  ListScheduler sched(g, c, model);
  const Allocation alloc{1, 1, 1};

  EXPECT_EQ(sched.rejected_count(), 0u);
  EXPECT_TRUE(std::isinf(sched.makespan_bounded(alloc, 1.0)));
  EXPECT_TRUE(std::isinf(sched.makespan_bounded(alloc, 1.0)));
  EXPECT_EQ(sched.rejected_count(), 2u);

  sched.reset_stats();
  EXPECT_EQ(sched.rejected_count(), 0u);

  // Counting restarts from zero, not from a lifetime offset.
  EXPECT_TRUE(std::isinf(sched.makespan_bounded(alloc, 1.0)));
  EXPECT_EQ(sched.rejected_count(), 1u);
  EXPECT_DOUBLE_EQ(sched.makespan_bounded(alloc, kInf), 6.0);
  EXPECT_EQ(sched.rejected_count(), 1u);  // accepted runs don't count
}

TEST(MappingKernel, SchedulersShareInstanceAcrossConstructions) {
  const Ptg g = testutil::diamond();
  const Cluster c = unit_cluster(4);
  const FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  ListScheduler a(pi);
  ListScheduler b(pi);
  EXPECT_EQ(&a.instance(), &b.instance());
  const Allocation alloc{1, 2, 2, 1};
  EXPECT_DOUBLE_EQ(a.makespan(alloc), b.makespan(alloc));
}

}  // namespace
}  // namespace ptgsched
