// Bit-identity suite for the incremental mapping kernel.
//
// The delta evaluation path (ListScheduler::makespan_delta against a
// parent EvalTrace) must be indistinguishable from a full list-scheduling
// pass: same fitness bits, same rejection counts, same evolution
// trajectory. These tests drive long random mutation chains over every
// corpus graph class and both processor-selection policies, compare the
// bounded/rejection paths exactly, pin the kernel against the preserved
// ReferenceMapper oracle, and check that an ES run is bit-identical under
// KernelMode::Full, KernelMode::Incremental, and KernelMode::Batched.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "../common/test_graphs.hpp"
#include "core/problem_instance.hpp"
#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/reference_mapper.hpp"
#include "support/rng.hpp"

namespace ptgsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const std::vector<std::string>& corpus_classes() {
  static const std::vector<std::string> classes = {"fft", "strassen",
                                                   "layered", "irregular"};
  return classes;
}

Allocation random_allocation(std::size_t n, int P, Rng& rng) {
  Allocation alloc(n);
  for (auto& s : alloc) s = static_cast<int>(rng.uniform_int(1, P));
  return alloc;
}

/// Mutate 1..4 random genes. Newly drawn sizes may coincide with the old
/// value, so `touched` is deliberately a superset of the real changes —
/// exactly the contract the engine relies on.
void mutate(Allocation& alloc, int P, Rng& rng,
            std::vector<TaskId>& touched) {
  touched.clear();
  const std::size_t count = 1 + rng.index(4);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pos = rng.index(alloc.size());
    alloc[pos] = static_cast<int>(rng.uniform_int(1, P));
    touched.push_back(static_cast<TaskId>(pos));
  }
}

TEST(IncrementalIdentity, LongMutationChainsAreBitIdentical) {
  const Cluster c = chti();
  const SyntheticModel model;
  for (const std::string& cls : corpus_classes()) {
    const auto graphs = corpus_by_name(cls, 40, 2, 901);
    for (const ProcessorSelection policy :
         {ProcessorSelection::EarliestAvailable,
          ProcessorSelection::BestFit}) {
      ListSchedulerOptions opts;
      opts.selection = policy;
      for (const auto& g : graphs) {
        const auto pi = ProblemInstance::borrow(g, model, c);
        ListScheduler sched(pi, opts);
        Rng rng(derive_seed(42, g.num_tasks(),
                            static_cast<std::uint64_t>(policy)));
        Allocation parent =
            random_allocation(g.num_tasks(), c.num_processors(), rng);
        EvalTrace trace;
        double parent_makespan = sched.makespan_traced(parent, trace);
        ASSERT_EQ(parent_makespan, sched.makespan(parent));
        std::vector<TaskId> touched;
        for (int step = 0; step < 40; ++step) {
          Allocation child = parent;
          mutate(child, c.num_processors(), rng, touched);
          const double full = sched.makespan(child);
          const double delta =
              sched.makespan_delta(child, touched, trace);
          // Bitwise equality, not approximate: the incremental pass
          // replays the exact same floating-point operations.
          ASSERT_EQ(full, delta)
              << cls << " step " << step << " policy "
              << static_cast<int>(policy);
          // Advance the chain: the child becomes the next parent.
          parent = std::move(child);
          parent_makespan = sched.makespan_traced(parent, trace);
          ASSERT_EQ(parent_makespan, full);
        }
      }
    }
  }
}

TEST(IncrementalIdentity, BoundedPathsAgreeIncludingRejectionCounts) {
  const Cluster c = chti();
  const SyntheticModel model;
  for (const std::string& cls : corpus_classes()) {
    const auto graphs = corpus_by_name(cls, 40, 2, 902);
    for (const ProcessorSelection policy :
         {ProcessorSelection::EarliestAvailable,
          ProcessorSelection::BestFit}) {
      ListSchedulerOptions opts;
      opts.selection = policy;
      for (const auto& g : graphs) {
        const auto pi = ProblemInstance::borrow(g, model, c);
        // Separate schedulers so the rejection counters can be compared
        // one-to-one: `full` only ever runs complete bounded passes,
        // `delta` only incremental ones.
        ListScheduler full(pi, opts);
        ListScheduler delta(pi, opts);
        ListScheduler tracer(pi, opts);
        Rng rng(derive_seed(43, g.num_tasks(),
                            static_cast<std::uint64_t>(policy)));
        Allocation parent =
            random_allocation(g.num_tasks(), c.num_processors(), rng);
        EvalTrace trace;
        const double base = tracer.makespan_traced(parent, trace);
        std::vector<TaskId> touched;
        for (int step = 0; step < 25; ++step) {
          Allocation child = parent;
          mutate(child, c.num_processors(), rng, touched);
          // Sweep bounds below, at, and above the parent makespan so the
          // chain exercises accept, reject, and the exact boundary.
          for (const double factor : {0.7, 0.95, 1.0, 1.05}) {
            const double bound = base * factor;
            const double a = full.makespan_bounded(child, bound);
            const double b =
                delta.makespan_delta(child, touched, trace, bound);
            ASSERT_EQ(a, b) << cls << " bound factor " << factor;
          }
        }
        // Every bounded pass must have made the same accept/reject
        // decision on both paths.
        EXPECT_EQ(full.rejected_count(), delta.rejected_count());
      }
    }
  }
}

TEST(IncrementalIdentity, KernelMatchesReferenceMapperOracle) {
  const Cluster c = chti();
  const SyntheticModel model;
  for (const std::string& cls : corpus_classes()) {
    const auto graphs = corpus_by_name(cls, 40, 2, 903);
    for (const ProcessorSelection policy :
         {ProcessorSelection::EarliestAvailable,
          ProcessorSelection::BestFit}) {
      ListSchedulerOptions opts;
      opts.selection = policy;
      for (const auto& g : graphs) {
        const auto pi = ProblemInstance::borrow(g, model, c);
        ListScheduler sched(pi, opts);
        ReferenceMapper oracle(pi, opts);
        Rng rng(derive_seed(44, g.num_tasks(),
                            static_cast<std::uint64_t>(policy)));
        for (int trial = 0; trial < 8; ++trial) {
          const Allocation alloc =
              random_allocation(g.num_tasks(), c.num_processors(), rng);
          const double want = oracle.makespan(alloc);
          ASSERT_EQ(want, sched.makespan(alloc));
          // Bounded runs agree too, including the rejection decision.
          for (const double factor : {0.8, 1.0, 1.2}) {
            ASSERT_EQ(oracle.makespan_bounded(alloc, want * factor),
                      sched.makespan_bounded(alloc, want * factor));
          }
        }
        EXPECT_EQ(oracle.rejected_count(), sched.rejected_count());
      }
    }
  }
}

TEST(IncrementalIdentity, InvalidOrMismatchedTraceFallsBackToFullPass) {
  const Cluster c = chti();
  const SyntheticModel model;
  const auto graphs = irregular_corpus(30, 1, 904);
  const auto pi = ProblemInstance::borrow(graphs.front(), model, c);
  ListScheduler sched(pi);
  Rng rng(905);
  const Allocation alloc =
      random_allocation(pi->num_tasks(), c.num_processors(), rng);
  const double want = sched.makespan(alloc);

  // Never-built trace: valid == false.
  const EvalTrace empty;
  EXPECT_EQ(want, sched.makespan_delta(alloc, {}, empty));

  // Trace built for a different (shorter) genome: size mismatch.
  EvalTrace stale;
  stale.valid = true;
  stale.alloc.assign(alloc.size() - 1, 1);
  EXPECT_EQ(want, sched.makespan_delta(alloc, {}, stale));
}

TEST(IncrementalIdentity, NoEffectiveChangeReproducesParentExactly) {
  const Cluster c = chti();
  const SyntheticModel model;
  const auto graphs = layered_corpus(40, 1, 906);
  const auto pi = ProblemInstance::borrow(graphs.front(), model, c);
  ListScheduler sched(pi);
  Rng rng(907);
  const Allocation parent =
      random_allocation(pi->num_tasks(), c.num_processors(), rng);
  EvalTrace trace;
  const double base = sched.makespan_traced(parent, trace);

  // `touched` re-assigns genes to their current values: no real change.
  std::vector<TaskId> touched = {0, static_cast<TaskId>(parent.size() / 2)};
  EXPECT_EQ(base, sched.makespan_delta(parent, touched, trace));
  EXPECT_EQ(base, sched.makespan_delta(parent, {}, trace));

  // The no-change shortcut must still honor the bound the way a full
  // bounded pass would.
  ListScheduler full(pi);
  const double tight = base * 0.9;
  EXPECT_EQ(full.makespan_bounded(parent, tight),
            sched.makespan_delta(parent, touched, trace, tight));
}

TEST(IncrementalIdentity, TrackedMutatorDrawsIdenticalChildren) {
  MutationParams params;
  const double fm = 0.33;
  const std::size_t generations = 10;
  const int P = 16;
  const MutateFn plain = Emts::make_mutator(params, fm, generations, P);
  const TrackedMutateFn tracked =
      Emts::make_tracked_mutator(params, fm, generations, P);
  Rng rng_a(5150);
  Rng rng_b(5150);
  Allocation parent(60, 4);
  for (std::size_t u = 0; u < generations; ++u) {
    const Allocation a = plain(parent, u, rng_a);
    std::vector<TaskId> touched;
    const Allocation b = tracked(parent, u, rng_b, touched);
    // Same RNG stream, same child — swapping the operators can never
    // change the evolution trajectory.
    ASSERT_EQ(a, b);
    EXPECT_FALSE(touched.empty());
    // `touched` covers every gene that differs from the parent.
    for (std::size_t v = 0; v < parent.size(); ++v) {
      if (b[v] != parent[v]) {
        EXPECT_NE(std::find(touched.begin(), touched.end(),
                            static_cast<TaskId>(v)),
                  touched.end());
      }
    }
    parent = b;
  }
}

EmtsResult run_emts(const std::shared_ptr<const ProblemInstance>& pi,
                    KernelMode kernel, bool rejection,
                    std::size_t threads) {
  EmtsConfig cfg = emts5_config();
  cfg.seed = 1234;
  cfg.threads = threads;
  cfg.memoize = false;  // force every child through the mapping kernel
  cfg.use_rejection = rejection;
  cfg.kernel = kernel;
  const Emts emts(cfg);
  return emts.schedule(pi);
}

TEST(IncrementalIdentity, EsTrajectoryIsKernelInvariant) {
  const Cluster c = chti();
  const SyntheticModel model;
  const auto graphs = irregular_corpus(50, 2, 908);
  for (const auto& g : graphs) {
    const auto pi = ProblemInstance::borrow(g, model, c);
    for (const bool rejection : {false, true}) {
      const EmtsResult full = run_emts(pi, KernelMode::Full, rejection, 0);
      const EmtsResult incr =
          run_emts(pi, KernelMode::Incremental, rejection, 2);
      const EmtsResult batched =
          run_emts(pi, KernelMode::Batched, rejection, 2);
      EXPECT_EQ(full.makespan, incr.makespan);
      EXPECT_EQ(full.best_allocation, incr.best_allocation);
      EXPECT_EQ(full.makespan, batched.makespan);
      EXPECT_EQ(full.best_allocation, batched.best_allocation);
      ASSERT_EQ(full.es.history.size(), incr.es.history.size());
      ASSERT_EQ(full.es.history.size(), batched.es.history.size());
      for (std::size_t u = 0; u < full.es.history.size(); ++u) {
        EXPECT_EQ(full.es.history[u].best, incr.es.history[u].best);
        EXPECT_EQ(full.es.history[u].mean, incr.es.history[u].mean);
        EXPECT_EQ(full.es.history[u].worst, incr.es.history[u].worst);
        EXPECT_EQ(full.es.history[u].best, batched.es.history[u].best);
        EXPECT_EQ(full.es.history[u].mean, batched.es.history[u].mean);
        EXPECT_EQ(full.es.history[u].worst, batched.es.history[u].worst);
      }
      // The full run must not have taken the delta path, the incremental
      // run must actually have used it, and the batched run must have
      // formed real sibling-lockstep sessions.
      EXPECT_EQ(full.eval_stats.delta_scheduled, 0u);
      EXPECT_EQ(full.eval_stats.trace_builds, 0u);
      EXPECT_GT(incr.eval_stats.trace_builds, 0u);
      EXPECT_GT(incr.eval_stats.delta_scheduled, 0u);
      EXPECT_GT(batched.eval_stats.trace_builds, 0u);
      EXPECT_GT(batched.eval_stats.delta_scheduled, 0u);
      EXPECT_GT(batched.eval_stats.sibling_batches, 0u);
    }
  }
}

}  // namespace
}  // namespace ptgsched
