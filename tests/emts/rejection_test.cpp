// Tests for the early-rejection mapping strategy (Section VI future work).

#include <gtest/gtest.h>

#include "../common/test_graphs.hpp"
#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "sched/list_scheduler.hpp"

namespace ptgsched {
namespace {

using testutil::FixedTimeModel;
using testutil::unit_cluster;

TEST(BoundedMapping, InfiniteBoundMatchesExact) {
  const Ptg g = testutil::diamond();
  const Cluster c = unit_cluster(4);
  const FixedTimeModel model;
  ListScheduler sched(g, c, model);
  const Allocation alloc{1, 1, 1, 1};
  const double exact = sched.makespan(alloc);
  EXPECT_DOUBLE_EQ(
      sched.makespan_bounded(alloc,
                             std::numeric_limits<double>::infinity()),
      exact);
  EXPECT_EQ(sched.rejected_count(), 0u);
}

TEST(BoundedMapping, GenerousBoundMatchesExact) {
  const Ptg g = testutil::chain3();
  const Cluster c = unit_cluster(2);
  const FixedTimeModel model;
  ListScheduler sched(g, c, model);
  const Allocation alloc{1, 1, 1};
  EXPECT_DOUBLE_EQ(sched.makespan_bounded(alloc, 100.0), 6.0);
  // A bound exactly at the makespan is not exceeded -> no rejection.
  EXPECT_DOUBLE_EQ(sched.makespan_bounded(alloc, 6.0), 6.0);
  EXPECT_EQ(sched.rejected_count(), 0u);
}

TEST(BoundedMapping, TightBoundRejects) {
  const Ptg g = testutil::chain3();
  const Cluster c = unit_cluster(2);
  const FixedTimeModel model;
  ListScheduler sched(g, c, model);
  const Allocation alloc{1, 1, 1};
  EXPECT_TRUE(std::isinf(sched.makespan_bounded(alloc, 5.9)));
  EXPECT_EQ(sched.rejected_count(), 1u);
  // Rejection happens at the very first task: its start (0) + bottom
  // level (6) already exceeds the bound.
  EXPECT_TRUE(std::isinf(sched.makespan_bounded(alloc, 0.5)));
  EXPECT_EQ(sched.rejected_count(), 2u);
}

TEST(BoundedMapping, RejectionIsSound) {
  // Whenever the bounded evaluation rejects, the exact makespan really
  // does exceed the bound; whenever it returns a number, it is exact.
  const auto graphs = irregular_corpus(40, 4, 91);
  const Cluster c = chti();
  const SyntheticModel model;
  for (const auto& g : graphs) {
    ListScheduler sched(g, c, model);
    Rng rng(g.num_tasks());
    for (int trial = 0; trial < 10; ++trial) {
      Allocation alloc(g.num_tasks());
      for (auto& s : alloc) {
        s = static_cast<int>(rng.uniform_int(1, c.num_processors()));
      }
      const double exact = sched.makespan(alloc);
      const double bound = exact * rng.uniform_real(0.5, 1.5);
      const double bounded = sched.makespan_bounded(alloc, bound);
      if (std::isinf(bounded)) {
        EXPECT_GT(exact, bound);
      } else {
        EXPECT_DOUBLE_EQ(bounded, exact);
      }
    }
  }
}

TEST(EmtsRejection, BestResultUnchanged) {
  // The incumbent bound only discards individuals worse than the previous
  // generation's best, so the final best allocation is identical with and
  // without rejection (single-threaded).
  const auto graphs = irregular_corpus(60, 4, 92);
  const Cluster c = grelon();
  const SyntheticModel model;
  for (const auto& g : graphs) {
    EmtsConfig cfg = emts5_config();
    cfg.seed = 5;
    const EmtsResult plain = Emts(cfg).schedule(g, model, c);
    cfg.use_rejection = true;
    const EmtsResult rejecting = Emts(cfg).schedule(g, model, c);
    EXPECT_DOUBLE_EQ(plain.makespan, rejecting.makespan) << g.name();
    EXPECT_EQ(plain.best_allocation, rejecting.best_allocation) << g.name();
  }
}

TEST(EmtsRejection, ActuallyRejectsSomething) {
  Rng rng(3);
  const Ptg g = make_fft_ptg(16, rng);
  const Cluster c = grelon();
  const SyntheticModel model;
  EmtsConfig cfg = emts10_config();
  cfg.seed = 6;
  cfg.use_rejection = true;
  const EmtsResult r = Emts(cfg).schedule(g, model, c);
  EXPECT_GT(r.rejected_evaluations, 0u);
  EXPECT_LT(r.rejected_evaluations, r.es.evaluations);
}

TEST(EmtsRejection, DisabledMeansZeroRejections) {
  Rng rng(4);
  const Ptg g = make_fft_ptg(8, rng);
  const Cluster c = chti();
  const AmdahlModel model;
  EmtsConfig cfg = emts5_config();
  cfg.seed = 7;
  const EmtsResult r = Emts(cfg).schedule(g, model, c);
  EXPECT_EQ(r.rejected_evaluations, 0u);
}

}  // namespace
}  // namespace ptgsched
