// Tests for the alternative search strategies (random search, hill
// climbing, simulated annealing).

#include "ea/local_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ptgsched {
namespace {

FitnessFn sphere(Allocation target) {
  return [target = std::move(target)](const Allocation& genes, std::size_t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < genes.size(); ++i) {
      const double d = genes[i] - target[i];
      sum += d * d;
    }
    return sum;
  };
}

MutateFn stepper(int max_gene) {
  return [max_gene](const Allocation& parent, std::size_t, Rng& rng) {
    Allocation child = parent;
    const std::size_t pos = rng.index(child.size());
    child[pos] = static_cast<int>(std::clamp<std::int64_t>(
        child[pos] + rng.uniform_int(-2, 2), 1, max_gene));
    return child;
  };
}

Individual seed_of(Allocation genes) {
  Individual ind;
  ind.genes = std::move(genes);
  ind.origin = "seed";
  return ind;
}

LocalSearchConfig budget(std::size_t evals, std::uint64_t seed = 1) {
  LocalSearchConfig cfg;
  cfg.max_evaluations = evals;
  cfg.seed = seed;
  return cfg;
}

TEST(RandomSearch, RespectsEvaluationBudget) {
  const SearchResult r = random_search({seed_of({5, 5})}, sphere({1, 1}),
                                       stepper(10), budget(50));
  EXPECT_EQ(r.evaluations, 50u);
  EXPECT_EQ(r.trace.size(), 50u);
}

TEST(RandomSearch, NeverWorseThanBestSeed) {
  const auto fitness = sphere({3, 3, 3});
  const std::vector<Individual> seeds = {seed_of({9, 9, 9}),
                                         seed_of({4, 4, 4})};
  const SearchResult r =
      random_search(seeds, fitness, stepper(10), budget(40));
  EXPECT_LE(r.best.fitness, fitness(seeds[1].genes, 0));
}

TEST(HillClimber, ConvergesOnToyProblem) {
  const SearchResult r = hill_climb({seed_of({1, 1, 1, 1})},
                                    sphere({7, 7, 7, 7}), stepper(10),
                                    budget(600));
  EXPECT_LT(r.best.fitness, 4.0);
}

TEST(HillClimber, TraceIsMonotone) {
  const SearchResult r = hill_climb({seed_of({2, 9, 4})}, sphere({5, 5, 5}),
                                    stepper(10), budget(200));
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i], r.trace[i - 1] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(r.trace.back(), r.best.fitness);
}

TEST(HillClimber, Deterministic) {
  const auto run = [] {
    return hill_climb({seed_of({2, 9, 4})}, sphere({5, 5, 5}), stepper(10),
                      budget(100, 7));
  };
  const SearchResult a = run();
  const SearchResult b = run();
  EXPECT_EQ(a.best.genes, b.best.genes);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(SimulatedAnnealing, ConvergesOnToyProblem) {
  AnnealingConfig cfg;
  cfg.max_evaluations = 800;
  cfg.seed = 3;
  const SearchResult r = simulated_annealing(
      {seed_of({1, 1, 1, 1})}, sphere({8, 8, 8, 8}), stepper(10), cfg);
  EXPECT_LT(r.best.fitness, 8.0);
}

TEST(SimulatedAnnealing, BestTraceMonotoneEvenIfIncumbentWanders) {
  AnnealingConfig cfg;
  cfg.max_evaluations = 300;
  cfg.initial_temperature_fraction = 0.5;  // hot: expect accepted worsening
  cfg.seed = 4;
  const SearchResult r = simulated_annealing(
      {seed_of({5, 5})}, sphere({2, 8}), stepper(10), cfg);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i], r.trace[i - 1] + 1e-12);
  }
}

TEST(SimulatedAnnealing, RejectsBadConfig) {
  AnnealingConfig cfg;
  cfg.initial_temperature_fraction = 0.0;
  EXPECT_THROW((void)simulated_annealing({seed_of({1})}, sphere({1}),
                                         stepper(2), cfg),
               std::invalid_argument);
  cfg = AnnealingConfig{};
  cfg.cooling = 1.0;
  EXPECT_THROW((void)simulated_annealing({seed_of({1})}, sphere({1}),
                                         stepper(2), cfg),
               std::invalid_argument);
}

TEST(LocalSearch, CommonInputValidation) {
  const auto fitness = sphere({1});
  const auto mutate = stepper(2);
  EXPECT_THROW((void)hill_climb({}, fitness, mutate, budget(10)),
               std::invalid_argument);
  EXPECT_THROW((void)random_search({seed_of({})}, fitness, mutate,
                                   budget(10)),
               std::invalid_argument);
  EXPECT_THROW((void)hill_climb({seed_of({1})}, fitness, mutate, budget(0)),
               std::invalid_argument);
  LocalSearchConfig cfg = budget(10);
  cfg.pseudo_generations = 0;
  EXPECT_THROW((void)hill_climb({seed_of({1})}, fitness, mutate, cfg),
               std::invalid_argument);
}

TEST(LocalSearch, HillClimbBeatsRandomOnStructuredProblem) {
  // With a tight budget, walking beats re-rolling around the seed.
  const auto fitness = sphere({10, 10, 10, 10, 10, 10});
  const std::vector<Individual> seeds = {seed_of({1, 1, 1, 1, 1, 1})};
  double hc_total = 0.0;
  double rs_total = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    hc_total +=
        hill_climb(seeds, fitness, stepper(12), budget(150, s)).best.fitness;
    rs_total += random_search(seeds, fitness, stepper(12), budget(150, s))
                    .best.fitness;
  }
  EXPECT_LT(hc_total, rs_total);
}

}  // namespace
}  // namespace ptgsched
