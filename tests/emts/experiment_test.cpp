// Tests for the experiment harness (Figure 4/5 aggregation machinery).

#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace ptgsched {
namespace {

ComparisonConfig small_config() {
  ComparisonConfig cfg;
  cfg.classes = {"strassen", "irregular"};
  cfg.num_tasks = 30;
  cfg.platforms = {"chti"};
  cfg.model = "model2";
  cfg.instances = 3;
  cfg.baselines = {"mcpa", "hcpa"};
  cfg.emts = emts5_config();
  cfg.emts.generations = 2;  // keep the test fast
  cfg.emts.lambda = 10;
  cfg.seed = 7;
  return cfg;
}

TEST(Experiment, ProducesAllCellsAndInstances) {
  const ComparisonResult r = run_comparison(small_config());
  // 2 classes x 1 platform x 3 instances.
  EXPECT_EQ(r.instances.size(), 6u);
  // 2 classes x 1 platform x 2 baselines.
  EXPECT_EQ(r.cells.size(), 4u);
  for (const auto& cell : r.cells) {
    EXPECT_EQ(cell.ratio.n, 3u);
    EXPECT_GT(cell.ratio.mean, 0.0);
    EXPECT_LE(cell.ratio.lo, cell.ratio.mean);
    EXPECT_GE(cell.ratio.hi, cell.ratio.mean);
  }
}

TEST(Experiment, RatiosAtLeastOne) {
  // EMTS is seeded with the baselines, so T_baseline / T_EMTS >= 1 on
  // every instance, hence every cell mean >= 1.
  const ComparisonResult r = run_comparison(small_config());
  for (const auto& ir : r.instances) {
    for (const auto& [name, makespan] : ir.baseline_makespans) {
      EXPECT_GE(makespan / ir.emts_makespan, 1.0 - 1e-9)
          << ir.graph << " " << name;
    }
  }
  for (const auto& cell : r.cells) {
    EXPECT_GE(cell.ratio.mean, 1.0 - 1e-9);
  }
}

TEST(Experiment, DeterministicGivenSeed) {
  const ComparisonResult a = run_comparison(small_config());
  const ComparisonResult b = run_comparison(small_config());
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.instances[i].emts_makespan,
                     b.instances[i].emts_makespan);
  }
}

TEST(Experiment, ProgressCallbackCoversAllInstances) {
  std::size_t calls = 0;
  std::size_t last_done = 0;
  std::size_t reported_total = 0;
  (void)run_comparison(small_config(), [&](std::size_t done,
                                           std::size_t total) {
    ++calls;
    EXPECT_GT(done, last_done);
    last_done = done;
    reported_total = total;
  });
  EXPECT_EQ(calls, 6u);
  EXPECT_EQ(last_done, reported_total);
}

TEST(Experiment, RejectsEmptyLists) {
  ComparisonConfig cfg = small_config();
  cfg.classes.clear();
  EXPECT_THROW((void)run_comparison(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.baselines.clear();
  EXPECT_THROW((void)run_comparison(cfg), std::invalid_argument);
}

TEST(Experiment, TableContainsEveryCell) {
  const ComparisonResult r = run_comparison(small_config());
  const std::string table = format_ratio_table(r.cells, "emts5");
  EXPECT_NE(table.find("strassen"), std::string::npos);
  EXPECT_NE(table.find("irregular"), std::string::npos);
  EXPECT_NE(table.find("mcpa"), std::string::npos);
  EXPECT_NE(table.find("hcpa"), std::string::npos);
  EXPECT_NE(table.find("ci95_lo"), std::string::npos);
}

TEST(Experiment, CsvDumpsParse) {
  const ComparisonResult r = run_comparison(small_config());
  const auto dir = std::filesystem::temp_directory_path();
  const auto inst_csv = (dir / "ptgsched_inst.csv").string();
  const auto cell_csv = (dir / "ptgsched_cell.csv").string();
  write_instances_csv(r, inst_csv);
  write_cells_csv(r, cell_csv);

  std::ifstream in(inst_csv);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("emts_makespan"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 12u);  // 6 instances x 2 baselines

  std::ifstream in2(cell_csv);
  std::getline(in2, header);
  rows = 0;
  for (std::string line; std::getline(in2, line);) ++rows;
  EXPECT_EQ(rows, 4u);

  std::filesystem::remove(inst_csv);
  std::filesystem::remove(cell_csv);
}

}  // namespace
}  // namespace ptgsched
