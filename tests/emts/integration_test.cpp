// Cross-module integration tests: full pipeline from generated workloads
// through heuristics, EMTS, mapping, validation, and serialization.

#include <gtest/gtest.h>

#include <filesystem>

#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "heuristics/allocation_heuristic.hpp"
#include "ptg/io.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/validate.hpp"

namespace ptgsched {
namespace {

TEST(Integration, FullPipelineOnEveryWorkloadClass) {
  const Cluster c = platform_by_name("chti");
  const auto model = make_model("model2");
  EmtsConfig cfg = emts5_config();
  cfg.seed = 99;
  for (const std::string cls : {"fft", "strassen", "layered", "irregular"}) {
    const auto graphs = corpus_by_name(cls, 20, 2, 60);
    for (const auto& g : graphs) {
      const EmtsResult r = Emts(cfg).schedule(g, *model, c);
      EXPECT_NO_THROW(
          validate_schedule(r.schedule, g, r.best_allocation, *model, c))
          << cls << " " << g.name();
      EXPECT_GT(r.makespan, 0.0);
    }
  }
}

TEST(Integration, SerializedGraphSchedulesIdentically) {
  // Save -> load -> schedule must reproduce the identical makespan.
  const auto graphs = irregular_corpus(40, 2, 61);
  const Cluster c = platform_by_name("grelon");
  const auto model = make_model("model1");
  const auto path =
      (std::filesystem::temp_directory_path() / "ptgsched_integ.json")
          .string();
  for (const auto& g : graphs) {
    save_ptg(g, path);
    const Ptg loaded = load_ptg(path);
    EmtsConfig cfg = emts5_config();
    cfg.seed = 3;
    const double m1 = Emts(cfg).schedule(g, *model, c).makespan;
    const double m2 = Emts(cfg).schedule(loaded, *model, c).makespan;
    EXPECT_DOUBLE_EQ(m1, m2);
  }
  std::filesystem::remove(path);
}

TEST(Integration, AllHeuristicsComposableWithBothMappings) {
  const auto graphs = layered_corpus(50, 2, 62);
  const Cluster c = platform_by_name("chti");
  const auto model = make_model("model2");
  for (const auto& g : graphs) {
    for (const char* h : {"one", "cpa", "hcpa", "mcpa", "mcpa2", "delta"}) {
      const Allocation alloc = make_heuristic(h)->allocate(g, *model, c);
      for (const auto policy : {ProcessorSelection::EarliestAvailable,
                                ProcessorSelection::BestFit}) {
        const Schedule s =
            map_allocation(g, alloc, *model, c, {policy});
        EXPECT_NO_THROW(validate_schedule(s, g, alloc, *model, c))
            << h << " " << g.name();
      }
    }
  }
}

TEST(Integration, GanttOutputsForEmtsSchedule) {
  Rng rng(5);
  const Ptg g = make_fft_ptg(8, rng);
  const Cluster c = platform_by_name("chti");
  const auto model = make_model("model2");
  EmtsConfig cfg = emts5_config();
  cfg.seed = 5;
  const EmtsResult r = Emts(cfg).schedule(g, *model, c);
  const std::string ascii = gantt_ascii(r.schedule);
  EXPECT_NE(ascii.find("p000"), std::string::npos);
  const std::string svg = gantt_svg(r.schedule, g);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  const Json doc = r.schedule.to_json();
  EXPECT_EQ(doc.at("tasks").size(), g.num_tasks());
}

TEST(Integration, ConvergenceHistoryIsMonotoneUnderPlusSelection) {
  const auto graphs = irregular_corpus(60, 3, 63);
  const Cluster c = platform_by_name("grelon");
  const auto model = make_model("model2");
  EmtsConfig cfg = emts10_config();
  cfg.seed = 17;
  for (const auto& g : graphs) {
    const EmtsResult r = Emts(cfg).schedule(g, *model, c);
    double prev = std::numeric_limits<double>::infinity();
    for (const auto& gs : r.es.history) {
      EXPECT_LE(gs.best, prev + 1e-12) << g.name();
      prev = gs.best;
    }
    EXPECT_DOUBLE_EQ(prev, r.makespan);
  }
}

TEST(Integration, LargerClusterNeverSlowerForEmts) {
  // Scheduling the same PTG on Grelon (120 procs) can never yield a longer
  // makespan than on a hypothetical same-speed 20-node cluster.
  Rng rng(6);
  const Ptg g = make_fft_ptg(16, rng);
  const Cluster small("small", 20, 3.1);
  const Cluster large("large", 120, 3.1);
  const auto model = make_model("model1");
  EmtsConfig cfg = emts5_config();
  cfg.seed = 21;
  const double m_small = Emts(cfg).schedule(g, *model, small).makespan;
  const double m_large = Emts(cfg).schedule(g, *model, large).makespan;
  EXPECT_LE(m_large, m_small * 1.001);
}

TEST(Integration, SequentialLowerBoundRespected) {
  // No schedule can beat total_work / (P * speed) or the critical path of
  // the best single-task times.
  const auto graphs = layered_corpus(30, 3, 64);
  const Cluster c = platform_by_name("chti");
  const auto model = make_model("model1");
  EmtsConfig cfg = emts5_config();
  for (const auto& g : graphs) {
    const EmtsResult r = Emts(cfg).schedule(g, *model, c);
    // Work lower bound with perfect speedup (alpha >= 0 only helps).
    const double work_bound =
        g.total_flops() / (c.flops_per_second() *
                           static_cast<double>(c.num_processors()));
    EXPECT_GE(r.makespan, work_bound - 1e-9) << g.name();
  }
}

}  // namespace
}  // namespace ptgsched
