// Tests for the EMTS scheduler: configurations, seeding, the improvement
// invariant, determinism, and Model 1 / Model 2 behaviour.

#include "emts/emts.hpp"

#include <gtest/gtest.h>

#include "../common/test_graphs.hpp"
#include "daggen/corpus.hpp"
#include "sched/validate.hpp"

namespace ptgsched {
namespace {

TEST(EmtsConfig, PaperPresets) {
  const EmtsConfig e5 = emts5_config();
  EXPECT_EQ(e5.mu, 5u);
  EXPECT_EQ(e5.lambda, 25u);
  EXPECT_EQ(e5.generations, 5u);
  EXPECT_DOUBLE_EQ(e5.fm, 0.33);
  EXPECT_DOUBLE_EQ(e5.delta, 0.9);
  EXPECT_DOUBLE_EQ(e5.mutation.shrink_probability, 0.2);
  EXPECT_DOUBLE_EQ(e5.mutation.sigma_shrink, 5.0);
  EXPECT_TRUE(e5.plus_selection);

  const EmtsConfig e10 = emts10_config();
  EXPECT_EQ(e10.mu, 10u);
  EXPECT_EQ(e10.lambda, 100u);
  EXPECT_EQ(e10.generations, 10u);
}

TEST(Emts, RejectsBadConfig) {
  EmtsConfig cfg = emts5_config();
  cfg.generations = 0;
  EXPECT_THROW(Emts{cfg}, std::invalid_argument);
  cfg = emts5_config();
  cfg.fm = 0.0;
  EXPECT_THROW(Emts{cfg}, std::invalid_argument);
  cfg = emts5_config();
  cfg.seed_heuristics.clear();
  cfg.use_delta_seed = false;
  cfg.use_random_seed = false;
  EXPECT_THROW(Emts{cfg}, std::invalid_argument);
}

TEST(Emts, SeedsContainConfiguredHeuristics) {
  Rng rng(1);
  const Ptg g = make_fft_ptg(8, rng);
  const Cluster c = platform_by_name("chti");
  const AmdahlModel model;
  const Emts emts(emts5_config());
  const EmtsResult r = emts.schedule(g, model, c);
  ASSERT_EQ(r.seeds.size(), 3u);  // mcpa, hcpa, delta
  EXPECT_EQ(r.seeds[0].heuristic, "mcpa");
  EXPECT_EQ(r.seeds[1].heuristic, "hcpa");
  EXPECT_EQ(r.seeds[2].heuristic, "delta");
  for (const auto& s : r.seeds) {
    EXPECT_GT(s.makespan, 0.0);
    EXPECT_EQ(s.allocation.size(), g.num_tasks());
  }
}

TEST(Emts, NeverWorseThanBestSeed) {
  // Plus selection + heuristic seeds => EMTS's makespan is bounded by the
  // best heuristic's makespan under the same mapping. This is the paper's
  // headline invariant and must hold on every instance and both models.
  const Cluster chti_c = platform_by_name("chti");
  const Cluster grelon_c = platform_by_name("grelon");
  const AmdahlModel m1;
  const SyntheticModel m2;
  EmtsConfig cfg = emts5_config();
  std::uint64_t seed = 100;
  for (const auto& g : irregular_corpus(50, 4, 50)) {
    for (const Cluster* c : {&chti_c, &grelon_c}) {
      for (const ExecutionTimeModel* model :
           std::initializer_list<const ExecutionTimeModel*>{&m1, &m2}) {
        cfg.seed = ++seed;
        const EmtsResult r = Emts(cfg).schedule(g, *model, *c);
        double best_seed = r.seeds.front().makespan;
        for (const auto& s : r.seeds) {
          best_seed = std::min(best_seed, s.makespan);
        }
        EXPECT_LE(r.makespan, best_seed + 1e-9)
            << g.name() << " on " << c->name() << " / " << model->name();
      }
    }
  }
}

TEST(Emts, ProducesValidSchedules) {
  const Cluster c = platform_by_name("grelon");
  const SyntheticModel model;
  EmtsConfig cfg = emts5_config();
  cfg.seed = 3;
  for (const auto& g : layered_corpus(100, 3, 51)) {
    const EmtsResult r = Emts(cfg).schedule(g, model, c);
    EXPECT_NO_THROW(
        validate_schedule(r.schedule, g, r.best_allocation, model, c));
    EXPECT_DOUBLE_EQ(r.schedule.makespan(), r.makespan);
    EXPECT_DOUBLE_EQ(r.es.best.fitness, r.makespan);
  }
}

TEST(Emts, DeterministicGivenSeed) {
  Rng rng(9);
  const Ptg g = make_strassen_ptg(rng);
  const Cluster c = platform_by_name("chti");
  const SyntheticModel model;
  EmtsConfig cfg = emts5_config();
  cfg.seed = 1234;
  const EmtsResult a = Emts(cfg).schedule(g, model, c);
  const EmtsResult b = Emts(cfg).schedule(g, model, c);
  EXPECT_EQ(a.best_allocation, b.best_allocation);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Emts, ThreadedRunMatchesSerial) {
  Rng rng(10);
  const Ptg g = make_fft_ptg(8, rng);
  const Cluster c = platform_by_name("grelon");
  const AmdahlModel model;
  EmtsConfig cfg = emts5_config();
  cfg.seed = 7;
  const EmtsResult serial = Emts(cfg).schedule(g, model, c);
  cfg.threads = 3;
  const EmtsResult threaded = Emts(cfg).schedule(g, model, c);
  EXPECT_EQ(serial.best_allocation, threaded.best_allocation);
  EXPECT_DOUBLE_EQ(serial.makespan, threaded.makespan);
}

TEST(Emts, Emts10AtLeastAsGoodAsEmts5) {
  // More offspring and generations never hurt under plus selection with
  // the same seed stream prefix... the paper observes EMTS10 >= EMTS5.
  // With our independent seeding we assert the weaker (but still
  // meaningful) statement on average over a small corpus.
  const Cluster c = platform_by_name("grelon");
  const SyntheticModel model;
  double sum5 = 0.0;
  double sum10 = 0.0;
  std::uint64_t seed = 0;
  for (const auto& g : irregular_corpus(100, 4, 52)) {
    EmtsConfig c5 = emts5_config();
    c5.seed = ++seed;
    EmtsConfig c10 = emts10_config();
    c10.seed = seed;
    sum5 += Emts(c5).schedule(g, model, c).makespan;
    sum10 += Emts(c10).schedule(g, model, c).makespan;
  }
  EXPECT_LE(sum10, sum5 * 1.001);
}

TEST(Emts, ImprovesUnderNonMonotonicModelOnLargeCluster) {
  // The paper's key claim (Figure 5): under Model 2 on Grelon, EMTS
  // substantially improves on MCPA/HCPA. Assert a mean improvement > 2%
  // over a small corpus.
  const Cluster c = platform_by_name("grelon");
  const SyntheticModel model;
  double ratio_sum = 0.0;
  std::size_t n = 0;
  std::uint64_t seed = 500;
  for (const auto& g : irregular_corpus(100, 6, 53)) {
    EmtsConfig cfg = emts5_config();
    cfg.seed = ++seed;
    const EmtsResult r = Emts(cfg).schedule(g, model, c);
    double best_seed = r.seeds.front().makespan;
    for (const auto& s : r.seeds) best_seed = std::min(best_seed, s.makespan);
    ratio_sum += best_seed / r.makespan;
    ++n;
  }
  EXPECT_GT(ratio_sum / static_cast<double>(n), 1.02);
}

TEST(Emts, RandomSeedAblationStillValid) {
  Rng rng(11);
  const Ptg g = make_fft_ptg(4, rng);
  const Cluster c = platform_by_name("chti");
  const AmdahlModel model;
  EmtsConfig cfg = emts5_config();
  cfg.seed_heuristics.clear();
  cfg.use_delta_seed = false;
  cfg.use_random_seed = true;
  cfg.seed = 8;
  const EmtsResult r = Emts(cfg).schedule(g, model, c);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0].heuristic, "random");
  EXPECT_NO_THROW(
      validate_schedule(r.schedule, g, r.best_allocation, model, c));
}

TEST(Emts, TimeBudgetIsHonored) {
  Rng rng(12);
  const Ptg g = make_fft_ptg(16, rng);
  const Cluster c = platform_by_name("grelon");
  const SyntheticModel model;
  EmtsConfig cfg = emts10_config();
  cfg.generations = 100000;
  cfg.time_budget_seconds = 0.1;
  cfg.seed = 9;
  const EmtsResult r = Emts(cfg).schedule(g, model, c);
  EXPECT_TRUE(r.es.stopped_by_time_budget);
  EXPECT_LT(r.total_seconds, 10.0);
  // Stopping on the budget must still hand back a complete, valid
  // best-so-far schedule for the incumbent allocation.
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_EQ(r.best_allocation.size(), g.num_tasks());
  EXPECT_NO_THROW(
      validate_schedule(r.schedule, g, r.best_allocation, model, c));
  EXPECT_FALSE(r.cancelled);
}

TEST(Emts, MutatorClampsToValidRange) {
  const MutateFn mutate = Emts::make_mutator(MutationParams{}, 1.0, 5, 16);
  Rng rng(13);
  Allocation parent(20, 8);
  for (int i = 0; i < 200; ++i) {
    const Allocation child = mutate(parent, 0, rng);
    ASSERT_EQ(child.size(), parent.size());
    for (const int s : child) {
      EXPECT_GE(s, 1);
      EXPECT_LE(s, 16);
    }
  }
}

TEST(Emts, MutatorChangesExpectedAlleleCount) {
  // fm = 0.5, V = 100, generation 0 of 5 -> exactly 50 positions mutated
  // (each by a non-zero delta, though clamping can mask changes at bounds).
  const MutateFn mutate = Emts::make_mutator(MutationParams{}, 0.5, 5, 1000);
  Rng rng(14);
  const Allocation parent(100, 500);  // far from bounds: no clamping
  const Allocation child = mutate(parent, 0, rng);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (child[i] != parent[i]) ++changed;
  }
  EXPECT_EQ(changed, 50u);
}

TEST(Emts, MutatorLateGenerationsChangeFewer) {
  const MutateFn mutate = Emts::make_mutator(MutationParams{}, 0.5, 10, 1000);
  Rng rng(15);
  const Allocation parent(100, 500);
  const auto count_changes = [&](std::size_t gen) {
    std::size_t changed = 0;
    const Allocation child = mutate(parent, gen, rng);
    for (std::size_t i = 0; i < parent.size(); ++i) {
      if (child[i] != parent[i]) ++changed;
    }
    return changed;
  };
  EXPECT_GT(count_changes(0), count_changes(9));
}

}  // namespace
}  // namespace ptgsched
