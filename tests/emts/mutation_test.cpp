// Tests for the EMTS mutation operator (Sections III-C/III-D, Figure 3).

#include "emts/mutation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace ptgsched {
namespace {

TEST(MutationCount, PaperFormula) {
  // m = (1 - u/U) * fm * V, at least 1. EMTS5: U=5, fm=0.33, V=100.
  EXPECT_EQ(mutation_count(0, 5, 0.33, 100), 33u);
  EXPECT_EQ(mutation_count(1, 5, 0.33, 100), 26u);  // 0.8*33 = 26.4
  EXPECT_EQ(mutation_count(2, 5, 0.33, 100), 19u);  // 0.6*33 = 19.8
  EXPECT_EQ(mutation_count(3, 5, 0.33, 100), 13u);  // 0.4*33 = 13.2
  EXPECT_EQ(mutation_count(4, 5, 0.33, 100), 6u);   // 0.2*33 = 6.6
}

TEST(MutationCount, NeverBelowOneOrAboveV) {
  EXPECT_EQ(mutation_count(9, 10, 0.33, 5), 1u);   // would be 0.165
  EXPECT_EQ(mutation_count(0, 2, 1.0, 3), 3u);
  EXPECT_EQ(mutation_count(0, 5, 0.01, 100), 1u);
}

TEST(MutationCount, DecreasesOverGenerations) {
  std::size_t prev = 1000;
  for (std::size_t u = 0; u < 10; ++u) {
    const std::size_t m = mutation_count(u, 10, 0.5, 200);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

TEST(MutationCount, RejectsBadArguments) {
  EXPECT_THROW((void)mutation_count(5, 5, 0.33, 10), std::invalid_argument);
  EXPECT_THROW((void)mutation_count(0, 0, 0.33, 10), std::invalid_argument);
  EXPECT_THROW((void)mutation_count(0, 5, 0.0, 10), std::invalid_argument);
  EXPECT_THROW((void)mutation_count(0, 5, 1.5, 10), std::invalid_argument);
}

TEST(AllocationDelta, NeverZero) {
  MutationParams params;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(sample_allocation_delta(params, rng), 0);
  }
}

TEST(AllocationDelta, ShrinkProbabilityMatchesA) {
  // a = 0.2: "the number of processors allocated to a task decreases with
  // a probability of 20%."
  MutationParams params;
  params.shrink_probability = 0.2;
  Rng rng(2);
  int shrinks = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sample_allocation_delta(params, rng) < 0) ++shrinks;
  }
  EXPECT_NEAR(static_cast<double>(shrinks) / n, 0.2, 0.01);
}

TEST(AllocationDelta, StretchingMoreLikelyThanShrinking) {
  MutationParams params;  // a = 0.2 < 0.5
  Rng rng(3);
  int stretch = 0;
  int shrink = 0;
  for (int i = 0; i < 20000; ++i) {
    (sample_allocation_delta(params, rng) > 0 ? stretch : shrink)++;
  }
  EXPECT_GT(stretch, 2 * shrink);
}

TEST(AllocationDelta, SmallChangesMoreLikelyThanLarge) {
  MutationParams params;  // sigma = 5
  Rng rng(4);
  std::map<int, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[std::abs(sample_allocation_delta(params, rng))];
  }
  // Magnitude 1 must be the most common; far tail must be rare.
  for (const auto& [mag, count] : counts) {
    if (mag > 1) EXPECT_LE(count, counts[1]) << "magnitude " << mag;
  }
  int beyond_3sigma = 0;
  for (const auto& [mag, count] : counts) {
    if (mag > 16) beyond_3sigma += count;
  }
  EXPECT_LT(beyond_3sigma, 1000);  // ~0.3% of half-normal beyond 3 sigma
}

TEST(AllocationDelta, EmpiricalMatchesPmf) {
  MutationParams params;
  Rng rng(5);
  const int n = 200000;
  std::map<int, int> counts;
  for (int i = 0; i < n; ++i) ++counts[sample_allocation_delta(params, rng)];
  for (const int c : {-5, -2, -1, 1, 2, 5, 9}) {
    const double expected = allocation_delta_pmf(params, c);
    const double observed = static_cast<double>(counts[c]) / n;
    EXPECT_NEAR(observed, expected, 0.005) << "c=" << c;
  }
}

TEST(AllocationDeltaPmf, SumsToOne) {
  MutationParams params;
  double total = 0.0;
  for (int c = -200; c <= 200; ++c) total += allocation_delta_pmf(params, c);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(allocation_delta_pmf(params, 0), 0.0);
}

TEST(AllocationDeltaPmf, BranchWeights) {
  MutationParams params;
  params.shrink_probability = 0.2;
  double neg = 0.0;
  double pos = 0.0;
  for (int c = 1; c <= 200; ++c) {
    pos += allocation_delta_pmf(params, c);
    neg += allocation_delta_pmf(params, -c);
  }
  EXPECT_NEAR(neg, 0.2, 1e-9);
  EXPECT_NEAR(pos, 0.8, 1e-9);
}

TEST(AllocationDeltaDensity, MirrorsFigure3Shape) {
  MutationParams params;  // sigma1 = sigma2 = 5, a = 0.2
  // No mass between -1 and 1.
  EXPECT_DOUBLE_EQ(allocation_delta_density(params, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(allocation_delta_density(params, 0.5), 0.0);
  // Peak just beyond +1 is higher than just beyond -1 (stretch-biased).
  EXPECT_GT(allocation_delta_density(params, 1.01),
            allocation_delta_density(params, -1.01));
  // Density decays with magnitude.
  EXPECT_GT(allocation_delta_density(params, 2.0),
            allocation_delta_density(params, 10.0));
  EXPECT_GT(allocation_delta_density(params, -2.0),
            allocation_delta_density(params, -10.0));
}

TEST(AllocationDeltaDensity, IntegratesToOne) {
  MutationParams params;
  double integral = 0.0;
  const double dx = 0.01;
  for (double x = -60.0; x <= 60.0; x += dx) {
    integral += allocation_delta_density(params, x) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(AllocationDelta, RejectsBadParams) {
  Rng rng(6);
  MutationParams bad;
  bad.shrink_probability = 1.5;
  EXPECT_THROW((void)sample_allocation_delta(bad, rng),
               std::invalid_argument);
  bad = MutationParams{};
  bad.sigma_shrink = 0.0;
  EXPECT_THROW((void)sample_allocation_delta(bad, rng),
               std::invalid_argument);
  EXPECT_THROW((void)allocation_delta_pmf(bad, 1), std::invalid_argument);
}

TEST(AllocationDelta, AsymmetricSigmas) {
  MutationParams params;
  params.shrink_probability = 0.5;
  params.sigma_shrink = 1.0;
  params.sigma_stretch = 10.0;
  Rng rng(7);
  double shrink_mag = 0.0;
  double stretch_mag = 0.0;
  int shrinks = 0;
  int stretches = 0;
  for (int i = 0; i < 50000; ++i) {
    const int c = sample_allocation_delta(params, rng);
    if (c < 0) {
      shrink_mag += -c;
      ++shrinks;
    } else {
      stretch_mag += c;
      ++stretches;
    }
  }
  EXPECT_LT(shrink_mag / shrinks, stretch_mag / stretches);
}

}  // namespace
}  // namespace ptgsched
