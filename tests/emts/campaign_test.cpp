// Tests for the full-evaluation campaign driver.

#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace ptgsched {
namespace {

CampaignConfig tiny_campaign() {
  CampaignConfig cfg;
  cfg.instances = 2;
  cfg.num_tasks = 20;
  cfg.seed = 11;
  cfg.include_emts10 = false;  // keep the test fast
  return cfg;
}

TEST(Campaign, ReportHasAllSections) {
  const Json report = run_campaign(tiny_campaign());
  EXPECT_TRUE(report.contains("meta"));
  EXPECT_TRUE(report.contains("fig4_model1_emts5"));
  EXPECT_TRUE(report.contains("fig5_model2_emts5"));
  EXPECT_TRUE(report.contains("runtime_emts5_model2"));
  EXPECT_TRUE(
      report.contains("optimality_gap_emts5_model2_irregular_grelon"));
  EXPECT_FALSE(report.contains("fig5_model2_emts10"));
  // 4 classes x 2 platforms x 2 baselines cells per figure.
  EXPECT_EQ(report.at("fig4_model1_emts5").size(), 16u);
  EXPECT_EQ(report.at("fig5_model2_emts5").size(), 16u);
}

TEST(Campaign, RatiosAndGapsAreSane) {
  const Json report = run_campaign(tiny_campaign());
  for (const Json& cell : report.at("fig4_model1_emts5").as_array()) {
    EXPECT_GE(cell.at("mean_ratio").as_double(), 1.0 - 1e-9);
    EXPECT_LE(cell.at("ci95_lo").as_double(),
              cell.at("mean_ratio").as_double());
  }
  const Json& gap =
      report.at("optimality_gap_emts5_model2_irregular_grelon");
  EXPECT_GE(gap.at("min").as_double(), 1.0 - 1e-9);  // lower bound holds
  EXPECT_GE(gap.at("mean_makespan_over_lower_bound").as_double(), 1.0);
}

TEST(Campaign, EmitsProgressForEveryPhase) {
  std::set<std::string> phases;
  (void)run_campaign(tiny_campaign(),
                     [&](const std::string& phase, std::size_t, std::size_t) {
                       phases.insert(phase);
                     });
  EXPECT_TRUE(phases.count("fig4"));
  EXPECT_TRUE(phases.count("fig5/emts5"));
  EXPECT_TRUE(phases.count("gap"));
}

TEST(Campaign, WritesArtifacts) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ptgsched_campaign_test";
  std::filesystem::remove_all(dir);
  CampaignConfig cfg = tiny_campaign();
  cfg.output_dir = dir.string();
  (void)run_campaign(cfg);
  EXPECT_TRUE(std::filesystem::exists(dir / "campaign_report.json"));
  EXPECT_TRUE(
      std::filesystem::exists(dir / "fig4_model1_emts5_instances.csv"));
  EXPECT_TRUE(
      std::filesystem::exists(dir / "fig5_model2_emts5_instances.csv"));
  // The report parses back.
  const Json loaded =
      Json::parse_file((dir / "campaign_report.json").string());
  EXPECT_TRUE(loaded.contains("fig4_model1_emts5"));
  std::filesystem::remove_all(dir);
}

TEST(Campaign, DeterministicGivenSeed) {
  const Json a = run_campaign(tiny_campaign());
  const Json b = run_campaign(tiny_campaign());
  EXPECT_EQ(a.at("fig4_model1_emts5"), b.at("fig4_model1_emts5"));
  EXPECT_EQ(a.at("fig5_model2_emts5"), b.at("fig5_model2_emts5"));
}

}  // namespace
}  // namespace ptgsched
