// Tests for the generic (mu + lambda) evolution strategy.

#include "ea/evolution.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

namespace ptgsched {
namespace {

// Toy fitness: minimize sum of squared distance to a target vector.
FitnessFn sphere_fitness(Allocation target) {
  return [target = std::move(target)](const Allocation& genes, std::size_t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < genes.size(); ++i) {
      const double d = genes[i] - target[i];
      sum += d * d;
    }
    return sum;
  };
}

MutateFn step_mutator(int max_gene) {
  return [max_gene](const Allocation& parent, std::size_t, Rng& rng) {
    Allocation child = parent;
    const std::size_t pos = rng.index(child.size());
    child[pos] = static_cast<int>(std::clamp<std::int64_t>(
        child[pos] + rng.uniform_int(-2, 2), 1, max_gene));
    return child;
  };
}

Individual seed_of(Allocation genes, std::string origin = "seed") {
  Individual ind;
  ind.genes = std::move(genes);
  ind.origin = std::move(origin);
  return ind;
}

TEST(EvolutionStrategy, ConvergesOnToyProblem) {
  EsConfig cfg;
  cfg.mu = 5;
  cfg.lambda = 20;
  cfg.generations = 60;
  cfg.seed = 1;
  EvolutionStrategy es(cfg, sphere_fitness({5, 9, 2, 7}), step_mutator(10));
  const EsResult result = es.run({seed_of({1, 1, 1, 1})});
  EXPECT_LT(result.best.fitness, 5.0);
}

TEST(EvolutionStrategy, PlusSelectionNeverWorsens) {
  // Section V: "the population can never become worse while the
  // generations proceed" under the Plus strategy.
  EsConfig cfg;
  cfg.mu = 3;
  cfg.lambda = 6;
  cfg.generations = 30;
  cfg.seed = 2;
  EvolutionStrategy es(cfg, sphere_fitness({8, 8, 8}), step_mutator(10));
  const EsResult result = es.run({seed_of({1, 2, 3})});
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& gs : result.history) {
    EXPECT_LE(gs.best, prev + 1e-12);
    prev = gs.best;
  }
}

TEST(EvolutionStrategy, BestNeverWorseThanAnySeed) {
  EsConfig cfg;
  cfg.mu = 4;
  cfg.lambda = 8;
  cfg.generations = 5;
  cfg.seed = 3;
  const auto fitness = sphere_fitness({4, 4});
  EvolutionStrategy es(cfg, fitness, step_mutator(8));
  const std::vector<Individual> seeds = {seed_of({1, 1}), seed_of({4, 5}),
                                         seed_of({8, 8})};
  const EsResult result = es.run(seeds);
  for (const auto& s : seeds) {
    EXPECT_LE(result.best.fitness, fitness(s.genes, 0));
  }
}

TEST(EvolutionStrategy, DeterministicGivenSeed) {
  EsConfig cfg;
  cfg.mu = 3;
  cfg.lambda = 10;
  cfg.generations = 10;
  cfg.seed = 77;
  const auto run_once = [&] {
    EvolutionStrategy es(cfg, sphere_fitness({6, 3, 9, 1}), step_mutator(10));
    return es.run({seed_of({5, 5, 5, 5})});
  };
  const EsResult a = run_once();
  const EsResult b = run_once();
  EXPECT_EQ(a.best.genes, b.best.genes);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(EvolutionStrategy, SeedChangesTrajectory) {
  EsConfig cfg;
  cfg.mu = 3;
  cfg.lambda = 10;
  cfg.generations = 3;
  cfg.seed = 1;
  EvolutionStrategy es1(cfg, sphere_fitness({6, 3, 9, 1}), step_mutator(10));
  cfg.seed = 2;
  EvolutionStrategy es2(cfg, sphere_fitness({6, 3, 9, 1}), step_mutator(10));
  const EsResult a = es1.run({seed_of({5, 5, 5, 5})});
  const EsResult b = es2.run({seed_of({5, 5, 5, 5})});
  // Different RNG seeds explore differently (genes or history differ).
  EXPECT_TRUE(a.best.genes != b.best.genes ||
              a.history.back().mean != b.history.back().mean);
}

TEST(EvolutionStrategy, EvaluationCountIsExact) {
  EsConfig cfg;
  cfg.mu = 5;
  cfg.lambda = 25;
  cfg.generations = 5;
  cfg.seed = 5;
  EvolutionStrategy es(cfg, sphere_fitness({3, 3}), step_mutator(6));
  // 1 seed -> filled to mu = 5 initial evaluations, then 5 * 25 offspring.
  const EsResult result = es.run({seed_of({1, 1})});
  EXPECT_EQ(result.evaluations, 5u + 5u * 25u);
  EXPECT_EQ(result.generations_run, 5u);
  EXPECT_EQ(result.history.size(), 6u);  // initial + one per generation
}

TEST(EvolutionStrategy, SurplusSeedsCompeteInFirstSelection) {
  EsConfig cfg;
  cfg.mu = 2;
  cfg.lambda = 4;
  cfg.generations = 1;
  cfg.seed = 6;
  const auto fitness = sphere_fitness({9, 9});
  EvolutionStrategy es(cfg, fitness, step_mutator(10));
  // Three seeds, mu = 2: the best two must survive; the best seed is
  // {9, 9} with fitness 0 and must be the final best.
  const EsResult result =
      es.run({seed_of({1, 1}), seed_of({9, 9}), seed_of({5, 5})});
  EXPECT_DOUBLE_EQ(result.best.fitness, 0.0);
}

TEST(EvolutionStrategy, CommaSelectionAllowedToWorsen) {
  EsConfig cfg;
  cfg.mu = 2;
  cfg.lambda = 4;
  cfg.generations = 2;
  cfg.plus_selection = false;
  cfg.seed = 7;
  EvolutionStrategy es(cfg, sphere_fitness({5, 5}), step_mutator(10));
  // Runs without error; history exists. (Worsening is possible, not
  // guaranteed, so only the mechanics are asserted.)
  const EsResult result = es.run({seed_of({5, 5})});
  EXPECT_EQ(result.history.size(), 3u);
}

TEST(EvolutionStrategy, CommaRequiresLambdaGeMu) {
  EsConfig cfg;
  cfg.mu = 10;
  cfg.lambda = 5;
  cfg.plus_selection = false;
  EXPECT_THROW(EvolutionStrategy(cfg, sphere_fitness({1}), step_mutator(2)),
               std::invalid_argument);
}

TEST(EvolutionStrategy, StagnationStopsEarly) {
  EsConfig cfg;
  cfg.mu = 2;
  cfg.lambda = 4;
  cfg.generations = 100;
  cfg.stagnation_limit = 3;
  cfg.seed = 8;
  // Fitness already optimal: no improvement is possible.
  EvolutionStrategy es(cfg, sphere_fitness({1, 1}), step_mutator(1));
  const EsResult result = es.run({seed_of({1, 1})});
  EXPECT_TRUE(result.stopped_by_stagnation);
  EXPECT_LT(result.generations_run, 100u);
}

TEST(EvolutionStrategy, TimeBudgetStops) {
  EsConfig cfg;
  cfg.mu = 2;
  cfg.lambda = 4;
  cfg.generations = 1000000;  // would run "forever"
  cfg.time_budget_seconds = 0.05;
  cfg.seed = 9;
  EvolutionStrategy es(cfg, sphere_fitness({3, 3}), step_mutator(5));
  const EsResult result = es.run({seed_of({1, 1})});
  EXPECT_TRUE(result.stopped_by_time_budget);
  EXPECT_LT(result.elapsed_seconds, 5.0);
}

TEST(EvolutionStrategy, ParallelEvaluationMatchesSerial) {
  EsConfig cfg;
  cfg.mu = 4;
  cfg.lambda = 16;
  cfg.generations = 8;
  cfg.seed = 10;
  EvolutionStrategy serial(cfg, sphere_fitness({7, 2, 5}), step_mutator(9));
  cfg.threads = 4;
  EvolutionStrategy parallel(cfg, sphere_fitness({7, 2, 5}), step_mutator(9));
  const EsResult a = serial.run({seed_of({1, 1, 1})});
  const EsResult b = parallel.run({seed_of({1, 1, 1})});
  EXPECT_EQ(a.best.genes, b.best.genes);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
}

TEST(EvolutionStrategy, WorkerThreadsPersistAcrossGenerations) {
  // Regression for the per-generation ThreadPool construction the ES used
  // to do: every fitness evaluation must run either on the evaluator's
  // persistent workers or on the driving thread, across all generations.
  EsConfig cfg;
  cfg.mu = 4;
  cfg.lambda = 32;
  cfg.generations = 6;
  cfg.seed = 21;

  std::mutex mu;
  std::set<std::thread::id> observed;
  const Allocation target = {5, 9, 2, 7};
  FitnessFn fitness = [&](const Allocation& genes, std::size_t) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      observed.insert(std::this_thread::get_id());
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < genes.size(); ++i) {
      const double d = genes[i] - target[i];
      sum += d * d;
    }
    return sum;
  };

  FnBatchEvaluator evaluator(std::move(fitness), 4);
  const auto workers_before = evaluator.pool().thread_ids();
  ASSERT_EQ(workers_before.size(), 3u);  // threads=4 -> 3 workers + caller

  EvolutionStrategy es(cfg, evaluator, step_mutator(10));
  const EsResult result = es.run({seed_of({1, 1, 1, 1})});
  EXPECT_EQ(result.generations_run, 6u);

  // The pool never recreated its workers...
  EXPECT_EQ(evaluator.pool().thread_ids(), workers_before);
  // ...and every observed evaluation thread is either a persistent worker
  // or the driving thread. A fresh pool per generation would leak other
  // transient thread ids into `observed`.
  for (const auto& id : observed) {
    const bool is_worker = std::find(workers_before.begin(),
                                     workers_before.end(),
                                     id) != workers_before.end();
    EXPECT_TRUE(is_worker || id == std::this_thread::get_id());
  }
  EXPECT_LE(observed.size(), workers_before.size() + 1);
}

TEST(EvolutionStrategy, BatchEvaluatorSelectionCheckpoints) {
  // on_selection fires after the initial selection and after every
  // generation, with best <= worst and no evaluations in flight.
  struct Recorder final : BatchEvaluator {
    std::vector<std::pair<double, double>> checkpoints;
    Allocation target{4, 4};
    void evaluate_batch(std::vector<Individual>& pool,
                        std::size_t begin) override {
      for (std::size_t i = begin; i < pool.size(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < pool[i].genes.size(); ++j) {
          const double d = pool[i].genes[j] - target[j];
          sum += d * d;
        }
        pool[i].fitness = sum;
      }
    }
    void on_selection(std::size_t, double best, double worst) override {
      checkpoints.emplace_back(best, worst);
    }
  } recorder;

  EsConfig cfg;
  cfg.mu = 3;
  cfg.lambda = 6;
  cfg.generations = 4;
  cfg.seed = 9;
  EvolutionStrategy es(cfg, recorder, step_mutator(8));
  const EsResult result = es.run({seed_of({1, 1})});
  EXPECT_EQ(recorder.checkpoints.size(), result.history.size());
  for (std::size_t i = 0; i < recorder.checkpoints.size(); ++i) {
    EXPECT_LE(recorder.checkpoints[i].first, recorder.checkpoints[i].second);
    EXPECT_DOUBLE_EQ(recorder.checkpoints[i].first, result.history[i].best);
    EXPECT_DOUBLE_EQ(recorder.checkpoints[i].second,
                     result.history[i].worst);
  }
}

TEST(EvolutionStrategy, RejectsBadConfigAndInput) {
  EsConfig cfg;
  cfg.mu = 0;
  EXPECT_THROW(EvolutionStrategy(cfg, sphere_fitness({1}), step_mutator(2)),
               std::invalid_argument);
  cfg = EsConfig{};
  cfg.lambda = 0;
  EXPECT_THROW(EvolutionStrategy(cfg, sphere_fitness({1}), step_mutator(2)),
               std::invalid_argument);
  cfg = EsConfig{};
  EXPECT_THROW(EvolutionStrategy(cfg, nullptr, step_mutator(2)),
               std::invalid_argument);
  EvolutionStrategy ok(cfg, sphere_fitness({1}), step_mutator(2));
  EXPECT_THROW((void)ok.run({}), std::invalid_argument);
  EXPECT_THROW((void)ok.run({seed_of({})}), std::invalid_argument);
}

TEST(EvolutionStrategy, HistoryStatisticsConsistent) {
  EsConfig cfg;
  cfg.mu = 5;
  cfg.lambda = 10;
  cfg.generations = 4;
  cfg.seed = 11;
  EvolutionStrategy es(cfg, sphere_fitness({5, 5}), step_mutator(10));
  const EsResult result = es.run({seed_of({2, 2})});
  for (const auto& gs : result.history) {
    EXPECT_LE(gs.best, gs.mean);
    EXPECT_LE(gs.mean, gs.worst);
    EXPECT_GE(gs.elapsed_seconds, 0.0);
  }
  EXPECT_EQ(result.history.back().evaluations, result.evaluations);
}

}  // namespace
}  // namespace ptgsched
