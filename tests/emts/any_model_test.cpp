// Property tests for the paper's central claim: "EMTS can be used with ANY
// underlying model for predicting the execution time of moldable tasks."
//
// We stress the whole pipeline with adversarial models the authors never
// tried: random per-p penalty tables (arbitrary non-monotonic spikes) and
// the communication-overhead model (U-shaped curves). Every invariant that
// holds for Model 1/2 must hold here too: valid schedules, the elitism
// bound vs the seeds, and respect for the makespan lower bound.

#include <gtest/gtest.h>

#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "model/overhead.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/validate.hpp"

namespace ptgsched {
namespace {

// Random penalty table over Amdahl: multipliers in [1, 3], independently
// per processor count — maximally irregular but still >= the ideal time.
std::shared_ptr<const ExecutionTimeModel> random_spiky_model(
    std::uint64_t seed, int max_procs) {
  Rng rng(seed);
  std::vector<double> table(static_cast<std::size_t>(max_procs));
  for (auto& m : table) m = rng.uniform_real(1.0, 3.0);
  return std::make_shared<PenaltyTableModel>(std::make_shared<AmdahlModel>(),
                                             std::move(table));
}

class AnyModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(AnyModelProperty, EmtsInvariantsHoldUnderRandomSpikyModels) {
  const auto model_seed = static_cast<std::uint64_t>(GetParam());
  const Cluster cluster = chti();
  const auto model = random_spiky_model(model_seed, cluster.num_processors());

  const auto graphs = irregular_corpus(30, 2, 500 + model_seed);
  for (const auto& g : graphs) {
    EmtsConfig cfg = emts5_config();
    cfg.seed = model_seed + 1;
    const EmtsResult r = Emts(cfg).schedule(g, *model, cluster);

    // 1. The schedule is legal under this exact model.
    EXPECT_NO_THROW(
        validate_schedule(r.schedule, g, r.best_allocation, *model, cluster))
        << g.name() << " model seed " << model_seed;

    // 2. Elitism: never worse than any seed heuristic.
    for (const auto& s : r.seeds) {
      EXPECT_LE(r.makespan, s.makespan + 1e-9)
          << g.name() << " vs " << s.heuristic;
    }

    // 3. The makespan lower bound holds for arbitrary models too.
    const MakespanLowerBounds lb =
        makespan_lower_bounds(g, *model, cluster);
    EXPECT_GE(r.makespan, lb.combined() - 1e-9) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(SpikyModels, AnyModelProperty,
                         ::testing::Range(0, 6));

TEST(AnyModel, EmtsWorksWithCommunicationOverheadModel) {
  const OverheadModel model(std::make_shared<AmdahlModel>(), 1e-4, 125e6);
  const Cluster cluster = grelon();
  const auto graphs = layered_corpus(50, 3, 777);
  for (const auto& g : graphs) {
    EmtsConfig cfg = emts5_config();
    cfg.seed = 3;
    const EmtsResult r = Emts(cfg).schedule(g, model, cluster);
    EXPECT_NO_THROW(
        validate_schedule(r.schedule, g, r.best_allocation, model, cluster));
    for (const auto& s : r.seeds) EXPECT_LE(r.makespan, s.makespan + 1e-9);
  }
}

TEST(AnyModel, EmtsWorksWithDowneyModel) {
  const DowneyModel model(1.5);
  const Cluster cluster = chti();
  Rng rng(9);
  const Ptg g = make_fft_ptg(8, rng);
  EmtsConfig cfg = emts5_config();
  cfg.seed = 4;
  const EmtsResult r = Emts(cfg).schedule(g, model, cluster);
  EXPECT_NO_THROW(
      validate_schedule(r.schedule, g, r.best_allocation, model, cluster));
}

TEST(AnyModel, RejectionStaysExactUnderSpikyModels) {
  // The rejection strategy's identity guarantee is model-independent.
  const Cluster cluster = chti();
  const auto model = random_spiky_model(99, cluster.num_processors());
  const auto graphs = irregular_corpus(40, 2, 888);
  for (const auto& g : graphs) {
    EmtsConfig cfg = emts5_config();
    cfg.seed = 5;
    const EmtsResult plain = Emts(cfg).schedule(g, *model, cluster);
    cfg.use_rejection = true;
    const EmtsResult rejecting = Emts(cfg).schedule(g, *model, cluster);
    EXPECT_DOUBLE_EQ(plain.makespan, rejecting.makespan) << g.name();
    EXPECT_EQ(plain.best_allocation, rejecting.best_allocation);
  }
}

}  // namespace
}  // namespace ptgsched
