// Journal rotation/compaction tests: recovery through snapshot + sealed
// segments must be bit-identical to replaying the unrotated journal; a
// SIGKILL-equivalent at *any* instrumented syscall — including mid-seal,
// mid-snapshot, and mid-prune — must lose and duplicate nothing; a torn
// tail after a valid snapshot is tolerated; duplicate terminal events are
// corruption named by id and byte offset.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "support/chaos.hpp"
#include "support/error_context.hpp"

namespace ptgsched::serve {
namespace {

namespace fs = std::filesystem;

class JournalRotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ptgsched_rotation_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string journal_path(const std::string& name) const {
    return (dir_ / (name + ".jsonl")).string();
  }

  fs::path dir_;
};

JournaledRequest sample_request(std::uint64_t id) {
  JournaledRequest r;
  r.id = id;
  r.tenant = id % 2 == 0 ? "tenant-even" : "tenant-odd";
  r.spec.cls = "layered";
  r.spec.tasks = 20 + static_cast<int>(id);
  r.spec.seed = id;
  r.deadline_seconds = 0.25 * static_cast<double>(id);
  return r;
}

/// The canonical event sequence both journals replay: submit/start/
/// complete for 8 requests (24 events). apply_one(j, k) performs event k.
constexpr std::size_t kEventCount = 24;

void apply_one(RequestJournal& j, std::size_t k) {
  const std::uint64_t id = k / 3 + 1;
  switch (k % 3) {
    case 0:
      j.record_submit(sample_request(id));
      break;
    case 1:
      j.record_start(id, static_cast<ServiceTier>(id % 3),
                     static_cast<int>(id % 2) + 1);
      break;
    default: {
      JsonObject result;
      result["makespan"] = 1.5 * static_cast<double>(id) + 0.0625;
      result["tier"] = service_tier_name(static_cast<ServiceTier>(id % 3));
      j.record_complete(id, Json(std::move(result)));
      break;
    }
  }
}

/// Exact serialization of a recovered state, for bit-identity assertions.
std::string fingerprint(const RecoveredState& state) {
  std::string out = "next_id=" + std::to_string(state.next_id) + "\n";
  for (const auto& [id, r] : state.requests) {
    out += std::to_string(id) + ":" + r.to_snapshot_json().dump() + "\n";
  }
  out += "pending=";
  for (const std::uint64_t id : state.pending) {
    out += std::to_string(id) + ",";
  }
  return out;
}

JournalRotation every_five_records() {
  JournalRotation rotation;
  rotation.max_segment_records = 5;
  return rotation;
}

TEST_F(JournalRotationTest, RecoveryBitIdenticalToUnrotatedJournal) {
  const std::string rotated = journal_path("rotated");
  const std::string plain = journal_path("plain");
  {
    RequestJournal jr(rotated, every_five_records());
    RequestJournal jp(plain);
    for (std::size_t k = 0; k < kEventCount; ++k) {
      apply_one(jr, k);
      apply_one(jp, k);
    }
    // 24 records at a 5-record watermark: 4 seals, each compacted away.
    const JournalStats stats = jr.stats();
    EXPECT_EQ(4u, stats.rotations);
    EXPECT_EQ(4u, stats.compactions);
    EXPECT_EQ(0u, stats.compaction_failures);
    EXPECT_EQ(4u, stats.segments_removed);
    EXPECT_EQ(0u, stats.sealed_segments);
    EXPECT_EQ(4u, stats.active_records);
  }
  EXPECT_TRUE(fs::exists(RequestJournal::snapshot_path(rotated)));
  EXPECT_FALSE(fs::exists(RequestJournal::segment_path(rotated, 4)));

  const RecoveredState from_rotated = RequestJournal::recover(rotated);
  const RecoveredState from_plain = RequestJournal::recover(plain);
  EXPECT_TRUE(from_rotated.from_snapshot);
  EXPECT_FALSE(from_plain.from_snapshot);
  EXPECT_EQ(fingerprint(from_plain), fingerprint(from_rotated));

  // The rotated layout is dramatically smaller than the full log — the
  // point of compaction — yet recovered identically (above).
  EXPECT_LT(fs::file_size(rotated), fs::file_size(plain));
}

TEST_F(JournalRotationTest, ReopenContinuesRotationSequence) {
  const std::string path = journal_path("reopen");
  {
    RequestJournal j(path, every_five_records());
    for (std::size_t k = 0; k < 12; ++k) apply_one(j, k);
  }
  {
    RequestJournal j(path, every_five_records());
    for (std::size_t k = 12; k < kEventCount; ++k) apply_one(j, k);
  }
  const RecoveredState state = RequestJournal::recover(path);

  const std::string plain = journal_path("plain");
  {
    RequestJournal j(plain);
    for (std::size_t k = 0; k < kEventCount; ++k) apply_one(j, k);
  }
  EXPECT_EQ(fingerprint(RequestJournal::recover(plain)),
            fingerprint(state));
}

TEST_F(JournalRotationTest, TornTailAfterValidSnapshotIsTolerated) {
  const std::string path = journal_path("torn");
  {
    RequestJournal j(path, every_five_records());
    for (std::size_t k = 0; k < kEventCount; ++k) apply_one(j, k);
  }
  const std::string before = fingerprint(RequestJournal::recover(path));
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"event":"submit","id":9,"tena)";  // the crash-torn append
  }
  const RecoveredState state = RequestJournal::recover(path);
  EXPECT_TRUE(state.from_snapshot);
  EXPECT_TRUE(state.tolerated_torn_tail);
  EXPECT_EQ(path, state.torn_file);
  EXPECT_EQ(before, fingerprint(state));

  // Reopening truncates the debris; appends resume cleanly after it.
  {
    RequestJournal j(path, every_five_records());
    EXPECT_TRUE(j.stats().repaired_torn_tail);
    j.record_submit(sample_request(9));
  }
  const RecoveredState repaired = RequestJournal::recover(path);
  EXPECT_FALSE(repaired.tolerated_torn_tail);
  EXPECT_EQ(RequestStatus::kQueued, repaired.requests.at(9).status);
}

TEST_F(JournalRotationTest, DuplicateTerminalEventNamesIdAndOffset) {
  const std::string path = journal_path("dup");
  {
    RequestJournal j(path);
    j.record_submit(sample_request(1));
    j.record_complete(1, Json(JsonObject{}));
    // The append side refuses a second terminal event outright...
    EXPECT_THROW(j.record_cancel(1, "late"), std::logic_error);
  }
  // ...so fabricate one the way corruption would: a raw line.
  const auto valid_bytes = fs::file_size(path);
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"event":"cancel","id":1,"reason":"late"})" << "\n";
  }
  try {
    (void)RequestJournal::recover(path);
    FAIL() << "duplicate terminal event must not recover";
  } catch (const LoadError& e) {
    const std::string what = e.what();
    EXPECT_NE(std::string::npos, what.find("request 1")) << what;
    EXPECT_NE(std::string::npos,
              what.find("byte offset " + std::to_string(valid_bytes)))
        << what;
    EXPECT_EQ(path, e.path());
  }
}

// SIGKILL-equivalent sweep: a forked child replays the event sequence
// against a rotating journal with the chaos kill switch stepping through
// every instrumented syscall — journal writes and fsyncs, the snapshot's
// atomic write/fsync/rename, the directory fsyncs of seal/reopen. After
// each kill the parent recovers the survivor and requires it to equal
// *some prefix* of the reference states — i.e. exactly the durable
// appends: no request lost, none duplicated, never a torn in-between.
TEST_F(JournalRotationTest, KillSweepRecoversExactPrefixState) {
  // Reference prefix states, from an unrotated chaos-free journal.
  std::vector<std::string> prefixes;
  const std::string ref = journal_path("ref");
  {
    RequestJournal j(ref);
    prefixes.push_back(fingerprint(RequestJournal::recover(ref)));
    for (std::size_t k = 0; k < kEventCount; ++k) {
      apply_one(j, k);
      prefixes.push_back(fingerprint(RequestJournal::recover(ref)));
    }
  }

  // Count the instrumented ops of one clean rotated run, to bound the
  // sweep (the op schedule is deterministic, so every run matches it).
  std::uint64_t total_ops = 0;
  {
    ChaosPolicy counting{ChaosConfig{}};
    ScopedChaos scope(counting);
    const std::string probe = journal_path("probe");
    RequestJournal j(probe, every_five_records());
    for (std::size_t k = 0; k < kEventCount; ++k) apply_one(j, k);
    for (int s = 0; s < kChaosSiteCount; ++s) {
      total_ops += counting.ops(static_cast<ChaosSite>(s));
    }
  }
  ASSERT_GT(total_ops, 2 * kEventCount);  // the seams are actually wired

  for (std::uint64_t kill_at = 0; kill_at <= total_ops; kill_at += 3) {
    const fs::path sweep_dir = dir_ / ("kill_" + std::to_string(kill_at));
    fs::create_directories(sweep_dir);
    const std::string path = (sweep_dir / "journal.jsonl").string();

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: the daemon incarnation chaos kills mid-syscall.
      ChaosConfig config;
      config.kill_after_ops = static_cast<std::int64_t>(kill_at);
      ChaosPolicy policy(config);
      install_chaos(&policy);
      try {
        RequestJournal j(path, every_five_records());
        for (std::size_t k = 0; k < kEventCount; ++k) apply_one(j, k);
      } catch (...) {
        ::_exit(120);  // any throw (not kill) is a sweep failure
      }
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(pid, ::waitpid(pid, &status, 0));
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_TRUE(WEXITSTATUS(status) == 0 || WEXITSTATUS(status) == 137)
        << "kill_at=" << kill_at << " exit=" << WEXITSTATUS(status);

    const std::string got = fingerprint(RequestJournal::recover(path));
    bool is_prefix = false;
    for (const std::string& expected : prefixes) {
      if (got == expected) {
        is_prefix = true;
        break;
      }
    }
    EXPECT_TRUE(is_prefix)
        << "kill_at=" << kill_at << " recovered a non-prefix state:\n"
        << got;
    if (WEXITSTATUS(status) == 0) {
      // The child finished: recovery must be the *full* state.
      EXPECT_EQ(prefixes.back(), got) << "kill_at=" << kill_at;
    }
  }
}

}  // namespace
}  // namespace ptgsched::serve
