// End-to-end daemon tests over a real AF_UNIX socket: the happy path,
// backpressure under a tiny admission queue, deadline expiry, user
// cancellation, forced degradation tiers, and bit-identical results for
// concurrent identical submissions.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"

namespace ptgsched::serve {
namespace {

namespace fs = std::filesystem;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Socket paths must fit sun_path (108 bytes): keep them short.
    dir_ = fs::path("/tmp") /
           ("ptgsrv_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::create_directories(dir_);
    config_.socket_path = (dir_ / "sock").string();
    config_.journal_path = (dir_ / "journal.jsonl").string();
    config_.queue_capacity = 16;
    config_.workers = 2;
    config_.base_seed = 17;
    config_.emts_budget_seconds = 0.0;  // tiny graphs: no budget needed
  }
  void TearDown() override {
    if (server_) server_->stop();
    fs::remove_all(dir_);
  }

  void start() {
    server_ = std::make_unique<ServeServer>(config_);
    server_->start();
  }

  static JobSpec tiny_spec(std::uint64_t seed = 5) {
    JobSpec spec;
    spec.cls = "layered";
    spec.tasks = 20;
    spec.platform = "chti";
    spec.model = "model1";
    spec.seed = seed;
    return spec;
  }

  fs::path dir_;
  ServeConfig config_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServerTest, SubmitStatusResultHappyPath) {
  start();
  ServeClient client(config_.socket_path);

  const SubmitOutcome outcome = client.submit(tiny_spec(), "tenant-a");
  ASSERT_TRUE(outcome.accepted);
  ASSERT_GT(outcome.id, 0u);

  const auto final_status = client.wait_terminal(outcome.id, 30.0);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ("done", final_status->at("status").as_string());

  const Json result = client.result(outcome.id);
  EXPECT_GT(result.at("makespan").as_double(), 0.0);
  EXPECT_EQ("emts", result.at("tier").as_string());
  EXPECT_EQ(20u, result.at("allocation").as_array().size());

  const Json stats = client.stats();
  EXPECT_EQ(1, stats.at("completed").as_int());
  EXPECT_EQ(0, stats.at("shed").as_int());
}

TEST_F(ServerTest, UnknownOpsAndIdsAreCleanErrors) {
  start();
  ServeClient client(config_.socket_path);

  Json bad_op = Json::object();
  bad_op.as_object()["op"] = "frobnicate";
  EXPECT_EQ(kErrBadRequest,
            client.request(bad_op).at("error").as_string());

  EXPECT_EQ(kErrUnknownId, client.status(999).at("error").as_string());
  EXPECT_THROW((void)client.result(999), std::runtime_error);

  // Malformed envelope: an op-less object is a bad request, and the
  // connection survives to serve the next message.
  EXPECT_FALSE(client.request(Json::object()).at("ok").as_bool());
  EXPECT_TRUE(client.stats().at("ok").as_bool());
}

TEST_F(ServerTest, BackpressureRejectsWithRetryAfter) {
  config_.queue_capacity = 1;
  config_.workers = 1;
  start();
  ServeClient client(config_.socket_path);

  // Park the single worker on a heavyweight request, then overfill the
  // one-slot queue: the second tiny submission must shed immediately
  // with a usable retry hint.
  JobSpec heavy = tiny_spec();
  heavy.cls = "irregular";
  heavy.tasks = 200;
  const SubmitOutcome busy = client.submit(heavy, "t");
  ASSERT_TRUE(busy.accepted);

  std::vector<SubmitOutcome> accepted;
  SubmitOutcome shed;
  bool saw_shed = false;
  for (int i = 0; i < 8 && !saw_shed; ++i) {
    const SubmitOutcome o = client.submit(tiny_spec(5), "t");
    if (o.accepted) {
      accepted.push_back(o);
    } else {
      shed = o;
      saw_shed = true;
    }
  }
  ASSERT_TRUE(saw_shed) << "queue of 1 never filled across 8 submits";
  EXPECT_EQ(kErrOverloaded, shed.error);
  EXPECT_GE(shed.retry_after_seconds, 0.05);
  EXPECT_LE(shed.retry_after_seconds, 30.0);

  // The accepted requests all finish; the shed one cost us nothing.
  for (const SubmitOutcome& o : accepted) {
    const auto final_status = client.wait_terminal(o.id, 60.0);
    ASSERT_TRUE(final_status.has_value());
    EXPECT_EQ("done", final_status->at("status").as_string());
  }
  ASSERT_TRUE(client.wait_terminal(busy.id, 120.0).has_value());
  const Json stats = client.stats();
  EXPECT_GE(stats.at("shed").as_int(), 1);

  // submit_with_retry rides out any remaining backpressure window.
  const SubmitOutcome retried =
      client.submit_with_retry(tiny_spec(5), "t", 0.0, 10);
  EXPECT_TRUE(retried.accepted);
}

TEST_F(ServerTest, DeadlineExpiryCancelsWithDeadlineReason) {
  config_.workers = 1;
  config_.emts_budget_seconds = 30.0;  // far beyond the deadline
  start();
  ServeClient client(config_.socket_path);

  // A heavyweight spec with a 100 ms deadline: the watchdog must trip it
  // (a 2000-task EMTS run takes a couple hundred ms at minimum).
  JobSpec heavy = tiny_spec();
  heavy.cls = "irregular";
  heavy.tasks = 2000;
  const SubmitOutcome outcome = client.submit(heavy, "t", 0.1);
  ASSERT_TRUE(outcome.accepted);

  const auto final_status = client.wait_terminal(outcome.id, 30.0);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ("cancelled", final_status->at("status").as_string());
  EXPECT_EQ("deadline", final_status->at("detail").as_string());
  EXPECT_THROW((void)client.result(outcome.id), std::runtime_error);
}

TEST_F(ServerTest, UserCancelOfAQueuedRequest) {
  config_.workers = 1;
  start();
  ServeClient client(config_.socket_path);

  // Park a slow request on the single worker, then cancel one behind it.
  JobSpec heavy = tiny_spec();
  heavy.tasks = 100;
  const SubmitOutcome running = client.submit(heavy, "t");
  ASSERT_TRUE(running.accepted);
  const SubmitOutcome queued = client.submit(tiny_spec(), "t");
  ASSERT_TRUE(queued.accepted);

  const Json cancelled = client.cancel(queued.id);
  EXPECT_EQ("cancelled", cancelled.at("status").as_string());
  EXPECT_EQ("user_cancel", cancelled.at("detail").as_string());

  // The running request is unaffected.
  const auto final_status = client.wait_terminal(running.id, 30.0);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ("done", final_status->at("status").as_string());
}

TEST_F(ServerTest, ConcurrentIdenticalSubmissionsAreBitIdentical) {
  config_.workers = 4;
  start();

  // Four clients race the same (tenant, spec): every result — allocation
  // and %.17g-serialized makespan — must be byte-for-byte identical,
  // whichever worker or pooled engine served it.
  constexpr int kClients = 4;
  std::vector<std::string> dumps(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &dumps] {
      ServeClient client(config_.socket_path);
      const SubmitOutcome o =
          client.submit_with_retry(tiny_spec(9), "tenant-x");
      ASSERT_TRUE(o.accepted);
      const auto final_status = client.wait_terminal(o.id, 60.0);
      ASSERT_TRUE(final_status.has_value());
      ASSERT_EQ("done", final_status->at("status").as_string());
      dumps[static_cast<std::size_t>(i)] = client.result(o.id).dump();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(dumps[0], dumps[static_cast<std::size_t>(i)])
        << "client " << i << " saw a different result";
  }

  // The engine pool served repeats from warm engines.
  ServeClient client(config_.socket_path);
  const Json stats = client.stats();
  EXPECT_GE(stats.at("engine_pool").at("hits").as_int() +
                stats.at("engine_pool").at("misses").as_int(),
            kClients);
}

TEST_F(ServerTest, DegradedTiersStillReturnValidSchedules) {
  // A vanishing p95 budget makes the *first* completion (whatever its
  // real latency) count as full saturation, so every later request is
  // deterministically served at the bottom tier.
  config_.tiers.p95_budget_seconds = 1e-6;
  start();
  ServeClient client(config_.socket_path);

  const SubmitOutcome first = client.submit(tiny_spec(), "t");
  ASSERT_TRUE(first.accepted);
  auto final_status = client.wait_terminal(first.id, 30.0);
  ASSERT_TRUE(final_status.has_value());
  ASSERT_EQ("done", final_status->at("status").as_string());
  EXPECT_EQ("emts", client.result(first.id).at("tier").as_string());

  const SubmitOutcome degraded = client.submit(tiny_spec(), "t");
  ASSERT_TRUE(degraded.accepted);
  final_status = client.wait_terminal(degraded.id, 30.0);
  ASSERT_TRUE(final_status.has_value());
  ASSERT_EQ("done", final_status->at("status").as_string());
  const Json result = client.result(degraded.id);
  // p95/budget >> shed_high: bottom tier, still a valid schedule.
  EXPECT_EQ("cpa_one_shot", result.at("tier").as_string());
  EXPECT_GT(result.at("makespan").as_double(), 0.0);
  EXPECT_EQ(20u, result.at("allocation").as_array().size());

  const Json stats = client.stats();
  const Json& tiers = stats.at("tier_completions");
  EXPECT_EQ(1, tiers.at("emts").as_int());
  EXPECT_EQ(1, tiers.at("cpa_one_shot").as_int());
  EXPECT_EQ("cpa_one_shot", stats.at("current_tier").as_string());
}

TEST_F(ServerTest, ShutdownOpStopsTheDaemon) {
  start();
  ServeClient client(config_.socket_path);
  EXPECT_TRUE(client.shutdown().at("ok").as_bool());
  server_->wait();
  EXPECT_TRUE(server_->stopped());
  // The socket is gone; new connections fail.
  EXPECT_THROW(ServeClient{config_.socket_path}, std::runtime_error);
}

}  // namespace
}  // namespace ptgsched::serve
