// Fuzz-style corruption corpus for journal recovery: truncate the log at
// every byte of every record boundary and flip bits inside every record.
// The invariant under test: recovery either reproduces the exact state of
// a durable prefix (boundary truncations; mid-line truncations of the
// final record) or raises LoadError — it never silently drops an interior
// record and keeps going.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "support/error_context.hpp"

namespace ptgsched::serve {
namespace {

namespace fs = std::filesystem;

class JournalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ptgsched_corruption_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

JournaledRequest sample_request(std::uint64_t id) {
  JournaledRequest r;
  r.id = id;
  r.tenant = "tenant-" + std::to_string(id % 3);
  r.spec.tasks = 10 + static_cast<int>(id);
  r.spec.seed = id;
  return r;
}

/// A seven-record journal exercising every event kind.
void write_corpus_journal(const std::string& path) {
  RequestJournal j(path);
  j.record_submit(sample_request(1));
  j.record_start(1, ServiceTier::kEmts, 1);
  JsonObject result;
  result["makespan"] = 12.345678901234567;
  j.record_complete(1, Json(std::move(result)));
  j.record_submit(sample_request(2));
  j.record_cancel(2, "deadline");
  j.record_submit(sample_request(3));
  j.record_fail(3, "boom");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string fingerprint(const RecoveredState& state) {
  std::string out = "next_id=" + std::to_string(state.next_id) + "\n";
  for (const auto& [id, r] : state.requests) {
    out += std::to_string(id) + ":" + r.to_snapshot_json().dump() + "\n";
  }
  return out;
}

/// Byte offsets of each record boundary (position just past a newline),
/// including 0 and the full size.
std::vector<std::size_t> record_boundaries(const std::string& content) {
  std::vector<std::size_t> out{0};
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') out.push_back(i + 1);
  }
  return out;
}

TEST_F(JournalCorruptionTest, TruncationAtEveryRecordBoundaryIsExact) {
  write_corpus_journal(path_);
  const std::string full = read_file(path_);
  const std::vector<std::size_t> boundaries = record_boundaries(full);
  ASSERT_EQ(8u, boundaries.size());  // 7 records + offset 0

  // Reference prefix states: recover the journal truncated exactly at
  // each boundary — by construction a valid journal of k records.
  std::vector<std::string> prefixes;
  for (const std::size_t boundary : boundaries) {
    write_file(path_, full.substr(0, boundary));
    const RecoveredState state = RequestJournal::recover(path_);
    EXPECT_FALSE(state.tolerated_torn_tail) << "boundary " << boundary;
    prefixes.push_back(fingerprint(state));
  }
  // Each extra record changes the state (no two prefixes collide), so the
  // prefix-match assertions below are not vacuous.
  EXPECT_EQ(prefixes.size(),
            std::set<std::string>(prefixes.begin(), prefixes.end()).size());
}

TEST_F(JournalCorruptionTest, TruncationAtEveryByteIsPrefixExact) {
  write_corpus_journal(path_);
  const std::string full = read_file(path_);
  const std::vector<std::size_t> boundaries = record_boundaries(full);

  // State expected after truncation to `n` bytes: the records wholly
  // contained (mid-record debris is the torn tail, tolerated + flagged).
  const auto durable_records = [&](std::size_t n) {
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= n) {
      ++whole;
    }
    return whole;
  };
  std::vector<std::string> prefixes;
  for (const std::size_t boundary : boundaries) {
    write_file(path_, full.substr(0, boundary));
    prefixes.push_back(fingerprint(RequestJournal::recover(path_)));
  }

  for (std::size_t n = 0; n <= full.size(); ++n) {
    write_file(path_, full.substr(0, n));
    const RecoveredState state = RequestJournal::recover(path_);
    EXPECT_EQ(prefixes[durable_records(n)], fingerprint(state))
        << "truncated to " << n << " bytes";
    if (state.tolerated_torn_tail) {
      EXPECT_EQ(boundaries[durable_records(n)], state.torn_valid_bytes);
    }
  }
}

TEST_F(JournalCorruptionTest, BitFlipsNeverSilentlyDropInteriorRecords) {
  write_corpus_journal(path_);
  const std::string full = read_file(path_);
  const std::set<std::uint64_t> all_ids = [&] {
    std::set<std::uint64_t> ids;
    for (const auto& [id, r] : RequestJournal::recover(path_).requests) {
      ids.insert(id);
    }
    return ids;
  }();
  ASSERT_EQ(3u, all_ids.size());

  const std::vector<std::size_t> boundaries = record_boundaries(full);
  std::size_t flips = 0;
  std::size_t rejected = 0;
  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const std::size_t begin = boundaries[b];
    const std::size_t end = boundaries[b + 1] - 1;  // exclude the newline
    // Flip one bit at the record's first, middle, and last byte, at two
    // bit positions each — structural bytes ('{') and content bytes both.
    for (const std::size_t pos :
         {begin, begin + (end - begin) / 2, end - 1}) {
      for (const unsigned char mask : {0x01u, 0x20u}) {
        std::string mutated = full;
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^ mask);
        if (mutated == full) continue;
        write_file(path_, mutated);
        ++flips;
        try {
          const RecoveredState state = RequestJournal::recover(path_);
          // The flip parsed: it must have changed at most a value, never
          // swallowed a record — every id is still present (a benign
          // in-string flip), and nothing was "recovered" out of thin air
          // beyond one flipped id digit.
          std::set<std::uint64_t> ids;
          for (const auto& [id, r] : state.requests) ids.insert(id);
          EXPECT_GE(ids.size(), all_ids.size())
              << "record " << b << " pos " << pos << " mask "
              << static_cast<int>(mask) << " dropped a record silently";
        } catch (const LoadError&) {
          ++rejected;  // the expected outcome for structural flips
        } catch (const std::exception& e) {
          FAIL() << "wrong error type for flip at record " << b << ": "
                 << e.what();
        }
      }
    }
  }
  // Most flips corrupt JSON structure or event semantics; if none were
  // rejected the corpus is not actually hitting the validation paths.
  EXPECT_GT(flips, 30u);
  EXPECT_GT(rejected, flips / 2);
}

TEST_F(JournalCorruptionTest, CorruptSnapshotIsLoadErrorNotSilentReset) {
  JournalRotation rotation;
  rotation.max_segment_records = 3;
  {
    RequestJournal j(path_, rotation);
    j.record_submit(sample_request(1));
    j.record_start(1, ServiceTier::kEmts, 1);
    j.record_complete(1, Json(JsonObject{}));
    j.record_submit(sample_request(2));
  }
  const std::string snap = RequestJournal::snapshot_path(path_);
  ASSERT_TRUE(fs::exists(snap));
  const std::string good = read_file(snap);
  // Snapshots are written atomically, so damage is corruption — recovery
  // must refuse loudly rather than quietly restart from an empty table
  // (which would resurrect completed requests as lost).
  write_file(snap, good.substr(0, good.size() / 2));
  EXPECT_THROW((void)RequestJournal::recover(path_), LoadError);
  write_file(snap, good);
  EXPECT_EQ(2u, RequestJournal::recover(path_).requests.size());
}

}  // namespace
}  // namespace ptgsched::serve
