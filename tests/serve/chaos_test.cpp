// Chaos-policy tests: the fault schedule must be a pure function of
// (seed, site, op index); the instrumented seams — append journal,
// atomic writes, socket loops — must absorb EINTR/EAGAIN/short storms
// without data corruption and surface hard failures as their callers'
// documented errors; stalled peers must be dropped, not waited on
// forever.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "support/atomic_io.hpp"
#include "support/chaos.hpp"

namespace ptgsched {
namespace {

namespace fs = std::filesystem;

ChaosSiteConfig storm() {
  ChaosSiteConfig rates;
  rates.eintr_rate = 0.25;
  rates.eagain_rate = 0.15;
  rates.short_rate = 0.25;
  return rates;
}

std::vector<ChaosAction> draw_sequence(ChaosPolicy& policy, ChaosSite site,
                                       int n) {
  std::vector<ChaosAction> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(policy.decide(site));
  return out;
}

TEST(ChaosPolicy, SameSeedSameSchedulePerSite) {
  ChaosConfig config;
  config.seed = 42;
  config.set_sites({ChaosSite::kJournalWrite, ChaosSite::kSocketRead},
                   storm());
  ChaosPolicy a(config);
  ChaosPolicy b(config);
  EXPECT_EQ(draw_sequence(a, ChaosSite::kJournalWrite, 200),
            draw_sequence(b, ChaosSite::kJournalWrite, 200));
  EXPECT_EQ(draw_sequence(a, ChaosSite::kSocketRead, 200),
            draw_sequence(b, ChaosSite::kSocketRead, 200));
}

TEST(ChaosPolicy, ScheduleIsIndependentOfSiteInterleaving) {
  // Drawing the two sites alternately or back-to-back must not change
  // what each site observes — the determinism contract that makes chaos
  // soaks replayable across thread interleavings.
  ChaosConfig config;
  config.seed = 7;
  config.set_sites({ChaosSite::kJournalWrite, ChaosSite::kSocketRead},
                   storm());
  ChaosPolicy sequential(config);
  const auto journal_seq =
      draw_sequence(sequential, ChaosSite::kJournalWrite, 100);
  const auto socket_seq =
      draw_sequence(sequential, ChaosSite::kSocketRead, 100);

  ChaosPolicy interleaved(config);
  std::vector<ChaosAction> journal_inter;
  std::vector<ChaosAction> socket_inter;
  for (int i = 0; i < 100; ++i) {
    journal_inter.push_back(interleaved.decide(ChaosSite::kJournalWrite));
    socket_inter.push_back(interleaved.decide(ChaosSite::kSocketRead));
  }
  EXPECT_EQ(journal_seq, journal_inter);
  EXPECT_EQ(socket_seq, socket_inter);
}

TEST(ChaosPolicy, DifferentSeedsDiffer) {
  ChaosConfig a;
  a.seed = 1;
  a.set_sites({ChaosSite::kJournalWrite}, storm());
  ChaosConfig b = a;
  b.seed = 2;
  ChaosPolicy pa(a);
  ChaosPolicy pb(b);
  EXPECT_NE(draw_sequence(pa, ChaosSite::kJournalWrite, 300),
            draw_sequence(pb, ChaosSite::kJournalWrite, 300));
}

TEST(ChaosPolicy, RatesRoughlyHonoredAndCounted) {
  ChaosConfig config;
  ChaosSiteConfig rates;
  rates.eintr_rate = 0.5;
  config.set_sites({ChaosSite::kAtomicWrite}, rates);
  ChaosPolicy policy(config);
  const int kDraws = 2000;
  int eintr = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (policy.decide(ChaosSite::kAtomicWrite) == ChaosAction::kEintr) {
      ++eintr;
    }
  }
  EXPECT_NEAR(0.5, static_cast<double>(eintr) / kDraws, 0.05);
  EXPECT_EQ(static_cast<std::uint64_t>(eintr),
            policy.injected(ChaosSite::kAtomicWrite, ChaosAction::kEintr));
  EXPECT_EQ(static_cast<std::uint64_t>(kDraws),
            policy.ops(ChaosSite::kAtomicWrite));
  EXPECT_EQ(policy.injected_total(),
            policy.injected(ChaosSite::kAtomicWrite, ChaosAction::kEintr));
}

TEST(ChaosPolicy, NoPolicyInstalledMeansPlainSyscalls) {
  ASSERT_EQ(nullptr, current_chaos());
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  const char msg[] = "hello";
  EXPECT_EQ(static_cast<long>(sizeof msg),
            chaos_write(fds[1], msg, sizeof msg, ChaosSite::kSocketWrite));
  char buf[sizeof msg];
  EXPECT_EQ(static_cast<long>(sizeof msg),
            chaos_read(fds[0], buf, sizeof buf, ChaosSite::kSocketRead));
  ::close(fds[0]);
  ::close(fds[1]);
}

class ChaosSeamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ptgsched_chaos_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    install_chaos(nullptr);
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(ChaosSeamTest, AtomicWriteSurvivesAnEintrEagainShortStorm) {
  ChaosConfig config;
  config.seed = 11;
  config.set_sites({ChaosSite::kAtomicWrite, ChaosSite::kAtomicFsync,
                    ChaosSite::kAtomicRename},
                   storm());
  ChaosPolicy policy(config);
  ScopedChaos scope(policy);

  const std::string path = (dir_ / "report.json").string();
  std::string payload(4096, 'x');
  payload += "END";
  for (int i = 0; i < 20; ++i) {
    write_file_atomic(path, payload);
  }
  EXPECT_GT(policy.injected_total(), 0u) << "storm never actually fired";

  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(payload, buf.str());
}

TEST_F(ChaosSeamTest, JournalAppendsSurviveTheStormBitExactly) {
  ChaosConfig config;
  config.seed = 13;
  config.set_sites({ChaosSite::kJournalWrite, ChaosSite::kJournalFsync},
                   storm());
  ChaosPolicy policy(config);
  ScopedChaos scope(policy);

  const std::string path = (dir_ / "journal.jsonl").string();
  std::vector<std::string> lines;
  {
    AppendJournal journal(path);
    for (int i = 0; i < 50; ++i) {
      lines.push_back("{\"line\":" + std::to_string(i) + "}");
      journal.append_line(lines.back());
    }
  }
  EXPECT_GT(policy.injected_total(), 0u);

  std::ifstream in(path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(count, lines.size());
    EXPECT_EQ(lines[count], line) << "line " << count << " corrupted";
    ++count;
  }
  EXPECT_EQ(lines.size(), count);
}

TEST_F(ChaosSeamTest, PersistentFsyncFailureIsIoErrorNotCorruption) {
  ChaosConfig config;
  ChaosSiteConfig always_fail;
  always_fail.fail_rate = 1.0;
  always_fail.fail_errno = 28;  // ENOSPC
  config.set_sites({ChaosSite::kAtomicFsync}, always_fail);
  ChaosPolicy policy(config);
  ScopedChaos scope(policy);

  const std::string path = (dir_ / "report.json").string();
  EXPECT_THROW(write_file_atomic(path, "data"), IoError);
  EXPECT_FALSE(fs::exists(path)) << "failed write must not leave a target";
}

TEST_F(ChaosSeamTest, RotatingJournalAbsorbsSnapshotFailures) {
  // Disk-full at the snapshot seam: rotation keeps sealing, compaction
  // fails and is *absorbed* — recovery stays exact off the segments.
  ChaosConfig config;
  ChaosSiteConfig always_fail;
  always_fail.fail_rate = 1.0;
  always_fail.fail_errno = 28;
  config.set_sites({ChaosSite::kAtomicWrite}, always_fail);
  ChaosPolicy policy(config);

  const std::string path = (dir_ / "journal.jsonl").string();
  const std::string plain = (dir_ / "plain.jsonl").string();
  serve::JournalRotation rotation;
  rotation.max_segment_records = 2;
  {
    ScopedChaos scope(policy);
    serve::RequestJournal j(path, rotation);
    serve::RequestJournal p(plain);
    for (std::uint64_t id = 1; id <= 5; ++id) {
      serve::JournaledRequest r;
      r.id = id;
      r.tenant = "t";
      j.record_submit(r);
      p.record_submit(r);
      j.record_start(id, serve::ServiceTier::kEmts, 1);
      p.record_start(id, serve::ServiceTier::kEmts, 1);
    }
    const serve::JournalStats stats = j.stats();
    EXPECT_GT(stats.rotations, 0u);
    EXPECT_GT(stats.compaction_failures, 0u);
    EXPECT_EQ(0u, stats.compactions);
    EXPECT_GT(stats.sealed_segments, 0u);  // nothing pruned
  }
  const auto recovered = serve::RequestJournal::recover(path);
  const auto reference = serve::RequestJournal::recover(plain);
  EXPECT_FALSE(recovered.from_snapshot);
  ASSERT_EQ(reference.requests.size(), recovered.requests.size());
  for (const auto& [id, r] : reference.requests) {
    EXPECT_EQ(r.to_snapshot_json().dump(),
              recovered.requests.at(id).to_snapshot_json().dump());
  }
}

TEST_F(ChaosSeamTest, SocketFramesSurviveTheStorm) {
  ChaosConfig config;
  config.seed = 17;
  config.set_sites({ChaosSite::kSocketRead, ChaosSite::kSocketWrite},
                   storm());
  ChaosPolicy policy(config);
  ScopedChaos scope(policy);

  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::string payload(2000, 'p');
  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) {
      serve::write_frame(fds[1], payload + std::to_string(i));
    }
  });
  for (int i = 0; i < 10; ++i) {
    std::string got;
    ASSERT_TRUE(serve::read_frame(fds[0], got));
    EXPECT_EQ(payload + std::to_string(i), got);
  }
  writer.join();
  EXPECT_GT(policy.injected_total(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ChaosSeamTest, StalledPeerIsDroppedNotWaitedOnForever) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  // Write half a frame: a 100-byte announcement with 3 payload bytes.
  const char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(4, ::write(fds[1], prefix, 4));
  ASSERT_EQ(3, ::write(fds[1], "abc", 3));

  std::string out;
  EXPECT_THROW((void)serve::read_frame(fds[0], out, /*stall_timeout_ms=*/60),
               serve::ProtocolError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ChaosSeamTest, MidHandshakeDisconnectIsATornFrame) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(4, ::write(fds[1], prefix, 4));
  ::close(fds[1]);  // peer dies mid-frame

  std::string out;
  EXPECT_THROW((void)serve::read_frame(fds[0], out), serve::ProtocolError);
  ::close(fds[0]);
}

}  // namespace
}  // namespace ptgsched
