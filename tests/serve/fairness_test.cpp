// Tenant-fairness tests for the admission queue: per-tenant quotas shed
// the hog without touching its neighbors, deficit-round-robin dequeue
// gives a trickling tenant bounded delay under a flood, weights skew the
// drain share, and in-flight caps park a saturated tenant without
// blocking the rest. All assertions are deterministic queue-order
// properties — no timing.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "serve/admission.hpp"

namespace ptgsched::serve {
namespace {

AdmissionConfig fair_config(std::size_t capacity) {
  AdmissionConfig config;
  config.capacity = capacity;
  config.fair_dequeue = true;
  return config;
}

TEST(TenantQuotas, PerTenantQueueCapShedsOnlyTheHog) {
  AdmissionConfig config;
  config.capacity = 16;
  config.default_quota.max_queued = 2;
  AdmissionQueue q(config);

  EXPECT_EQ(AdmitOutcome::kAdmitted, q.push(1, "hog"));
  EXPECT_EQ(AdmitOutcome::kAdmitted, q.push(2, "hog"));
  EXPECT_EQ(AdmitOutcome::kTenantQueueFull, q.push(3, "hog"));
  // The neighbor is untouched by the hog's refusals.
  EXPECT_EQ(AdmitOutcome::kAdmitted, q.push(4, "quiet"));
  EXPECT_EQ(2u, q.tenant_depth("hog"));
  EXPECT_EQ(1u, q.tenant_depth("quiet"));
  EXPECT_EQ(1u, q.tenant_stats("hog").shed);
  EXPECT_EQ(0u, q.tenant_stats("quiet").shed);
  EXPECT_EQ(1u, q.shed_count());
}

TEST(TenantQuotas, NamedQuotaOverridesDefault) {
  AdmissionConfig config;
  config.capacity = 16;
  config.default_quota.max_queued = 1;
  config.tenant_quotas["vip"].max_queued = 4;
  AdmissionQueue q(config);

  EXPECT_TRUE(q.try_push(1, "plebeian"));
  EXPECT_FALSE(q.try_push(2, "plebeian"));
  for (std::uint64_t id = 10; id < 14; ++id) {
    EXPECT_TRUE(q.try_push(id, "vip"));
  }
  EXPECT_FALSE(q.try_push(14, "vip"));
}

TEST(TenantQuotas, InFlightCapCountsQueuedPlusRunning) {
  AdmissionConfig config;
  config.capacity = 16;
  config.default_quota.max_in_flight = 2;
  AdmissionQueue q(config);

  EXPECT_EQ(AdmitOutcome::kAdmitted, q.push(1, "t"));
  EXPECT_EQ(AdmitOutcome::kAdmitted, q.push(2, "t"));
  EXPECT_EQ(AdmitOutcome::kTenantSaturated, q.push(3, "t"));
  ASSERT_EQ(1u, q.pop().value());
  // One queued + one running still saturates; releasing the running slot
  // reopens admission.
  EXPECT_EQ(AdmitOutcome::kTenantSaturated, q.push(3, "t"));
  q.release(1);
  EXPECT_EQ(AdmitOutcome::kAdmitted, q.push(3, "t"));
}

TEST(FairDequeue, FloodedTenantCannotStarveATrickler) {
  AdmissionQueue q(fair_config(64));
  // The flood arrives first and en masse...
  for (std::uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(q.try_push(id, "flood"));
  }
  // ...then one trickled request lands behind all of it.
  ASSERT_TRUE(q.try_push(100, "trickle"));

  // Round-robin must surface the trickler within one full rotation of
  // the two tenants — position <= 2 — not behind the 20-deep flood.
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 21; ++i) order.push_back(q.pop().value());
  const auto pos =
      std::find(order.begin(), order.end(), 100u) - order.begin();
  EXPECT_LE(pos, 2) << "trickler waited behind the flood";

  // Per-tenant order is still FIFO.
  std::vector<std::uint64_t> flood_order;
  for (const std::uint64_t id : order) {
    if (id != 100u) flood_order.push_back(id);
  }
  for (std::size_t i = 0; i < flood_order.size(); ++i) {
    EXPECT_EQ(i + 1, flood_order[i]);
  }
}

TEST(FairDequeue, TricklerDelayIsBoundedByTenantCountEverywhere) {
  // Interleaved arrivals: after every trickle push, the number of pops
  // until it surfaces is bounded by the tenant count, independent of the
  // flood backlog — the queue-order form of "the trickler's p99 is
  // bounded under flood".
  AdmissionQueue q(fair_config(256));
  std::uint64_t flood_id = 1000;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    for (int burst = 0; burst < 8; ++burst) {
      ASSERT_TRUE(q.try_push(flood_id++, "flood"));
    }
    ASSERT_TRUE(q.try_push(id, "trickle"));
    int pops_until_trickle = 0;
    for (;;) {
      ++pops_until_trickle;
      if (q.pop().value() == id) break;
    }
    EXPECT_LE(pops_until_trickle, 3)
        << "trickle " << id << " starved behind the flood backlog";
  }
}

TEST(FairDequeue, WeightsSkewTheDrainShare) {
  AdmissionConfig config = fair_config(64);
  config.tenant_quotas["heavy"].weight = 2.0;
  config.tenant_quotas["light"].weight = 1.0;
  AdmissionQueue q(config);
  for (std::uint64_t id = 1; id <= 12; ++id) {
    ASSERT_TRUE(q.try_push(id, id <= 8 ? "heavy" : "light"));
  }
  // First 9 pops: heavy drains 2 per round to light's 1.
  int heavy = 0;
  int light = 0;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t id = q.pop().value();
    (id <= 8 ? heavy : light) += 1;
  }
  EXPECT_EQ(6, heavy);
  EXPECT_EQ(3, light);
}

TEST(FairDequeue, InFlightCapParksTenantWithoutBlockingOthers) {
  AdmissionConfig config = fair_config(16);
  config.tenant_quotas["capped"].max_in_flight = 1;
  AdmissionQueue q(config);
  ASSERT_TRUE(q.try_push(1, "capped"));
  // max_in_flight=1 bounds queued+running at admission: id 2 is shed.
  EXPECT_FALSE(q.try_push(2, "capped"));
  EXPECT_EQ(1u, q.tenant_stats("capped").shed);
  ASSERT_TRUE(q.try_push(3, "free"));
  ASSERT_TRUE(q.try_push(4, "free"));

  EXPECT_EQ(1u, q.pop().value());  // capped's only request starts
  EXPECT_FALSE(q.try_push(5, "capped"));  // still at cap: running=1
  EXPECT_EQ(2u, q.tenant_stats("capped").shed);
  q.release(1);
  ASSERT_TRUE(q.try_push(5, "capped"));
  // capped now queued while under its running cap: poppable again.
  std::vector<std::uint64_t> rest;
  for (int i = 0; i < 3; ++i) rest.push_back(q.pop().value());
  EXPECT_NE(rest.end(), std::find(rest.begin(), rest.end(), 5u));
}

TEST(FairDequeue, CloseDrainsEvenSaturatedTenants) {
  AdmissionConfig config = fair_config(16);
  config.tenant_quotas["capped"].max_in_flight = 2;
  AdmissionQueue q(config);
  ASSERT_TRUE(q.try_push(1, "capped"));
  ASSERT_TRUE(q.try_push(2, "capped"));
  ASSERT_EQ(1u, q.pop().value());
  ASSERT_EQ(2u, q.pop().value());
  // Both slots running; a third can't even be admitted pre-close...
  EXPECT_EQ(AdmitOutcome::kTenantSaturated, q.push(3, "capped"));
  q.close();
  // ...and close() lifts the caps so shutdown never deadlocks on a
  // tenant that will never release (its workers are being joined).
  EXPECT_FALSE(q.pop().has_value());
}

TEST(FairDequeue, StatsReportPerTenantCounters) {
  AdmissionQueue q(fair_config(8));
  ASSERT_TRUE(q.try_push(1, "a"));
  ASSERT_TRUE(q.try_push(2, "a"));
  ASSERT_TRUE(q.try_push(3, "b"));
  (void)q.pop();
  const Json tenants = q.tenants_json();
  EXPECT_EQ(2, tenants.at("a").at("admitted").as_int());
  EXPECT_EQ(1, tenants.at("b").at("admitted").as_int());
  EXPECT_EQ(1, tenants.at("a").at("popped").as_int() +
                   tenants.at("b").at("popped").as_int());
}

}  // namespace
}  // namespace ptgsched::serve
