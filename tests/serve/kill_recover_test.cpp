// Kill-and-recover tests for ptgsched-serve: a daemon killed by SIGTERM
// mid-request (routed through install_signal_cancellation, exactly the
// path a real deployment takes) must stop without journaling bogus
// terminal states, and a fresh daemon on the same journal must
//
//   * serve every request finished before the kill bit-identically
//     (byte-for-byte equal result payloads), and
//   * re-run every interrupted request to completion — at the pinned tier
//     and deterministic seed, so the re-run result equals what an
//     uninterrupted daemon would have produced.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "support/cancellation.hpp"

namespace ptgsched::serve {
namespace {

namespace fs = std::filesystem;

JobSpec spec_for(std::uint64_t seed) {
  JobSpec spec;
  spec.cls = "layered";
  spec.tasks = 25;
  spec.platform = "chti";
  spec.model = "model1";
  spec.seed = seed;
  return spec;
}

class KillRecoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("/tmp") /
           ("ptgkill_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::create_directories(dir_);
    config_.socket_path = (dir_ / "sock").string();
    config_.journal_path = (dir_ / "journal.jsonl").string();
    config_.queue_capacity = 32;
    // One worker keeps the phase-1 script deterministic: the heavyweight
    // request occupies it while the request behind stays queued.
    config_.workers = 1;
    config_.base_seed = 23;
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  ServeConfig config_;
};

TEST_F(KillRecoverTest, SigtermMidRequestRecoversBitIdentically) {
  // --- Phase 1: serve some traffic, then SIGTERM mid-request. ----------
  std::map<std::uint64_t, std::string> finished_results;
  std::vector<std::uint64_t> interrupted_ids;
  {
    CancellationToken shutdown;
    install_signal_cancellation(&shutdown);
    ServeConfig cfg = config_;
    cfg.shutdown = &shutdown;
    ServeServer server(cfg);
    server.start();

    ServeClient client(cfg.socket_path);
    // Two requests run to completion...
    for (const std::uint64_t seed : {3ULL, 4ULL}) {
      const SubmitOutcome o = client.submit(spec_for(seed), "tenant-a");
      ASSERT_TRUE(o.accepted);
      const auto final_status = client.wait_terminal(o.id, 60.0);
      ASSERT_TRUE(final_status.has_value());
      ASSERT_EQ("done", final_status->at("status").as_string());
      finished_results[o.id] = client.result(o.id).dump();
    }
    // ...then a heavyweight one is mid-flight when SIGTERM arrives,
    // with another queued behind it on the single worker.
    JobSpec heavy = spec_for(5);
    heavy.cls = "irregular";
    heavy.tasks = 2000;  // big enough to straddle the kill comfortably
    const SubmitOutcome running = client.submit(heavy, "tenant-a");
    ASSERT_TRUE(running.accepted);
    interrupted_ids.push_back(running.id);
    const SubmitOutcome queued = client.submit(spec_for(6), "tenant-b");
    ASSERT_TRUE(queued.accepted);
    interrupted_ids.push_back(queued.id);

    // Wait until the worker has actually picked the heavy request up, so
    // the SIGTERM lands mid-request, not mid-queue.
    while (true) {
      const Json status = client.status(running.id);
      ASSERT_TRUE(status.at("ok").as_bool());
      const std::string& s = status.at("status").as_string();
      ASSERT_TRUE(s == "queued" || s == "running")
          << "heavy request finished before the kill — raise its size";
      if (s == "running") break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Genuine SIGTERM through the installed handler — the same
    // async-signal-safe path a real `kill` takes.
    std::raise(SIGTERM);
    install_signal_cancellation(nullptr);
    server.wait();
    EXPECT_TRUE(server.stopped());
  }

  // The journal must show the interrupted requests as non-terminal.
  {
    const RecoveredState state =
        RequestJournal::recover(config_.journal_path);
    for (const std::uint64_t id : interrupted_ids) {
      ASSERT_TRUE(state.requests.count(id) > 0);
      EXPECT_FALSE(is_terminal(state.requests.at(id).status))
          << "shutdown journaled a terminal state for request " << id;
    }
    for (const auto& [id, dump] : finished_results) {
      EXPECT_EQ(RequestStatus::kDone, state.requests.at(id).status);
    }
  }

  // --- Phase 2: a fresh daemon on the same journal. --------------------
  {
    ServeServer server(config_);
    server.start();
    EXPECT_GE(server.counters().recovered, interrupted_ids.size());

    ServeClient client(config_.socket_path);
    // Finished-before-kill results are served bit-identically.
    for (const auto& [id, dump] : finished_results) {
      EXPECT_EQ(dump, client.result(id).dump())
          << "recovered result for request " << id << " differs";
    }
    // Interrupted requests re-run to completion.
    for (const std::uint64_t id : interrupted_ids) {
      const auto final_status = client.wait_terminal(id, 120.0);
      ASSERT_TRUE(final_status.has_value());
      EXPECT_EQ("done", final_status->at("status").as_string())
          << "request " << id;
      EXPECT_GT(client.result(id).at("makespan").as_double(), 0.0);
    }
    server.stop();
  }

  // --- Phase 3: determinism oracle — an uninterrupted daemon on a fresh
  // journal produces the same results for the same submissions. ---------
  {
    ServeConfig fresh = config_;
    fresh.socket_path = (dir_ / "sock2").string();
    fresh.journal_path = (dir_ / "journal2.jsonl").string();
    ServeServer server(fresh);
    server.start();
    ServeClient client(fresh.socket_path);

    JobSpec heavy = spec_for(5);
    heavy.cls = "irregular";
    heavy.tasks = 2000;
    const SubmitOutcome o = client.submit(heavy, "tenant-a");
    ASSERT_TRUE(o.accepted);
    ASSERT_TRUE(client.wait_terminal(o.id, 120.0).has_value());
    const std::string oracle = client.result(o.id).dump();
    server.stop();

    // Compare against the recovered daemon's re-run of the same spec,
    // tenant, and (recovered) attempt.
    const RecoveredState state =
        RequestJournal::recover(config_.journal_path);
    const std::string recovered =
        state.requests.at(interrupted_ids[0]).result.dump();
    EXPECT_EQ(oracle, recovered)
        << "re-run after recovery diverged from an uninterrupted run";
  }
}

TEST_F(KillRecoverTest, RestartAfterCleanStopServesOldResults) {
  std::uint64_t id = 0;
  std::string dump;
  {
    ServeServer server(config_);
    server.start();
    ServeClient client(config_.socket_path);
    const SubmitOutcome o = client.submit(spec_for(11), "t");
    ASSERT_TRUE(o.accepted);
    id = o.id;
    ASSERT_TRUE(client.wait_terminal(id, 60.0).has_value());
    dump = client.result(id).dump();
    server.stop();
  }
  {
    ServeServer server(config_);
    server.start();
    ServeClient client(config_.socket_path);
    EXPECT_EQ(dump, client.result(id).dump());
    // New ids never collide with journaled ones.
    const SubmitOutcome o = client.submit(spec_for(12), "t");
    ASSERT_TRUE(o.accepted);
    EXPECT_GT(o.id, id);
    server.stop();
  }
}

}  // namespace
}  // namespace ptgsched::serve
