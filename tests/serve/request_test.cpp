// JobSpec / request-domain tests: canonical serialization, stable
// fingerprints, and the deterministic per-(tenant, job, attempt) seeds
// that make concurrent identical submissions reproducible.

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/request.hpp"

namespace ptgsched::serve {
namespace {

JobSpec sample_spec() {
  JobSpec spec;
  spec.cls = "irregular";
  spec.tasks = 40;
  spec.platform = "grelon";
  spec.model = "model2";
  spec.seed = 99;
  spec.corpus_index = 2;
  return spec;
}

TEST(JobSpec, JsonRoundTrip) {
  const JobSpec spec = sample_spec();
  const JobSpec back = JobSpec::from_json(spec.to_json());
  EXPECT_EQ(spec.cls, back.cls);
  EXPECT_EQ(spec.tasks, back.tasks);
  EXPECT_EQ(spec.platform, back.platform);
  EXPECT_EQ(spec.model, back.model);
  EXPECT_EQ(spec.seed, back.seed);
  EXPECT_EQ(spec.corpus_index, back.corpus_index);
  EXPECT_EQ(spec.fingerprint(), back.fingerprint());
}

TEST(JobSpec, FromJsonValidates) {
  Json j = sample_spec().to_json();
  j.as_object().erase("model");
  EXPECT_THROW((void)JobSpec::from_json(j), JsonError);

  Json bad_tasks = sample_spec().to_json();
  bad_tasks.as_object()["tasks"] = 0;
  EXPECT_THROW((void)JobSpec::from_json(bad_tasks), JsonError);
}

TEST(JobSpec, FingerprintSeparatesSpecs) {
  const JobSpec a = sample_spec();
  JobSpec b = a;
  b.tasks = 41;
  JobSpec c = a;
  c.seed = 100;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a.fingerprint(), sample_spec().fingerprint());
}

TEST(RequestSeed, IsAPureFunctionOfItsInputs) {
  const JobSpec spec = sample_spec();
  const std::uint64_t s = request_seed(1, "tenant-a", spec, 1);
  EXPECT_EQ(s, request_seed(1, "tenant-a", spec, 1));
  // Every input separates the stream.
  EXPECT_NE(s, request_seed(2, "tenant-a", spec, 1));
  EXPECT_NE(s, request_seed(1, "tenant-b", spec, 1));
  EXPECT_NE(s, request_seed(1, "tenant-a", spec, 2));
  JobSpec other = spec;
  other.corpus_index = 3;
  EXPECT_NE(s, request_seed(1, "tenant-a", other, 1));
}

TEST(RequestStatusNames, RoundTripAndTerminality) {
  for (const RequestStatus s :
       {RequestStatus::kQueued, RequestStatus::kRunning,
        RequestStatus::kDone, RequestStatus::kCancelled,
        RequestStatus::kFailed}) {
    EXPECT_EQ(s, request_status_from_name(request_status_name(s)));
  }
  EXPECT_THROW((void)request_status_from_name("nope"),
               std::invalid_argument);
  EXPECT_FALSE(is_terminal(RequestStatus::kQueued));
  EXPECT_FALSE(is_terminal(RequestStatus::kRunning));
  EXPECT_TRUE(is_terminal(RequestStatus::kDone));
  EXPECT_TRUE(is_terminal(RequestStatus::kCancelled));
  EXPECT_TRUE(is_terminal(RequestStatus::kFailed));
}

}  // namespace
}  // namespace ptgsched::serve
