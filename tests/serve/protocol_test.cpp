// Wire-protocol tests: length-prefixed framing over a socketpair must
// round-trip arbitrary payloads, refuse oversized announcements, and
// report torn frames as errors rather than misparsing them.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "serve/protocol.hpp"

namespace ptgsched::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Protocol, FramesRoundTrip) {
  SocketPair s;
  write_frame(s.a, "hello");
  write_frame(s.a, "");  // empty frames are legal
  std::string payload(100000, 'x');
  std::thread writer([&] { write_frame(s.a, payload); });

  std::string out;
  ASSERT_TRUE(read_frame(s.b, out));
  EXPECT_EQ("hello", out);
  ASSERT_TRUE(read_frame(s.b, out));
  EXPECT_EQ("", out);
  ASSERT_TRUE(read_frame(s.b, out));
  EXPECT_EQ(payload, out);
  writer.join();
}

TEST(Protocol, CleanEofBetweenFramesReturnsFalse) {
  SocketPair s;
  write_frame(s.a, "last");
  ::close(s.a);
  s.a = -1;
  std::string out;
  ASSERT_TRUE(read_frame(s.b, out));
  EXPECT_FALSE(read_frame(s.b, out));
}

TEST(Protocol, TornFrameThrows) {
  {
    SocketPair s;
    const char half_prefix[2] = {0, 0};
    ASSERT_EQ(2, ::write(s.a, half_prefix, 2));
    ::close(s.a);
    s.a = -1;
    std::string out;
    EXPECT_THROW((void)read_frame(s.b, out), ProtocolError);
  }
  {
    SocketPair s;
    // Announce 100 bytes, deliver 3, die.
    const char prefix[4] = {0, 0, 0, 100};
    ASSERT_EQ(4, ::write(s.a, prefix, 4));
    ASSERT_EQ(3, ::write(s.a, "abc", 3));
    ::close(s.a);
    s.a = -1;
    std::string out;
    EXPECT_THROW((void)read_frame(s.b, out), ProtocolError);
  }
}

TEST(Protocol, OversizedAnnouncementRefusedWithoutAllocating) {
  SocketPair s;
  const char prefix[4] = {static_cast<char>(0xff), static_cast<char>(0xff),
                          static_cast<char>(0xff),
                          static_cast<char>(0xff)};
  ASSERT_EQ(4, ::write(s.a, prefix, 4));
  std::string out;
  EXPECT_THROW((void)read_frame(s.b, out), ProtocolError);
}

TEST(Protocol, OversizedPayloadRefusedOnTheWriteSide) {
  SocketPair s;
  const std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(write_frame(s.a, huge), ProtocolError);
}

TEST(Protocol, MessagesParseUnderWireLimits) {
  SocketPair s;
  write_frame(s.a, R"({"op":"stats"})");
  Json message;
  ASSERT_TRUE(read_message(s.b, message));
  EXPECT_EQ("stats", message.at("op").as_string());

  // A nesting bomb within the frame limit must raise JsonError (bounded
  // depth), not crash the reader.
  std::string bomb(1000, '[');
  write_frame(s.a, bomb);
  EXPECT_THROW((void)read_message(s.b, message), JsonError);
}

TEST(Protocol, ResponseHelpersCarryTheEnvelope) {
  const Json ok = ok_response({{"id", Json(7)}});
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_EQ(7, ok.at("id").as_int());

  const Json err = error_response(kErrOverloaded, "queue full",
                                  {{"retry_after_seconds", Json(0.5)}});
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ("overloaded", err.at("error").as_string());
  EXPECT_EQ("queue full", err.at("message").as_string());
  EXPECT_DOUBLE_EQ(0.5, err.at("retry_after_seconds").as_double());
}

}  // namespace
}  // namespace ptgsched::serve
