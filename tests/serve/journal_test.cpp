// Request-journal tests: recovery must rebuild the request table exactly
// from the event log, keep terminal results bit-identical, re-queue
// non-terminal requests with their pinned tier, tolerate exactly a torn
// final line, and refuse corruption anywhere earlier.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "serve/journal.hpp"

namespace ptgsched::serve {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ptgsched_journal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

JournaledRequest sample_request(std::uint64_t id) {
  JournaledRequest r;
  r.id = id;
  r.tenant = "tenant-a";
  r.spec.cls = "layered";
  r.spec.tasks = 30;
  r.spec.platform = "chti";
  r.spec.model = "model1";
  r.spec.seed = 7;
  r.deadline_seconds = 5.0;
  return r;
}

TEST_F(JournalTest, EmptyOrAbsentJournalRecoversToFreshState) {
  const RecoveredState state = RequestJournal::recover(path_);
  EXPECT_TRUE(state.requests.empty());
  EXPECT_EQ(1u, state.next_id);
  EXPECT_TRUE(state.pending.empty());
}

TEST_F(JournalTest, LifecycleRoundTripsThroughRecovery) {
  {
    RequestJournal j(path_);
    j.record_submit(sample_request(1));
    j.record_start(1, ServiceTier::kEmts, 1);
    JsonObject result;
    result["makespan"] = 123.456789012345678;  // %.17g must round-trip
    result["tier"] = "emts";
    j.record_complete(1, Json(result));

    j.record_submit(sample_request(2));
    j.record_start(2, ServiceTier::kHeuristic, 2);
    // Request 2 never finishes: the daemon dies here.
  }
  const RecoveredState state = RequestJournal::recover(path_);
  ASSERT_EQ(2u, state.requests.size());
  EXPECT_EQ(3u, state.next_id);

  const JournaledRequest& done = state.requests.at(1);
  EXPECT_EQ(RequestStatus::kDone, done.status);
  EXPECT_EQ("tenant-a", done.tenant);
  EXPECT_EQ(30, done.spec.tasks);
  EXPECT_DOUBLE_EQ(5.0, done.deadline_seconds);
  // Bit-identical result payload: the double survives exactly.
  EXPECT_EQ(123.456789012345678,
            done.result.at("makespan").as_double());

  const JournaledRequest& interrupted = state.requests.at(2);
  EXPECT_EQ(RequestStatus::kRunning, interrupted.status);
  EXPECT_TRUE(interrupted.tier_pinned);
  EXPECT_EQ(ServiceTier::kHeuristic, interrupted.tier);
  EXPECT_EQ(2, interrupted.attempt);
  ASSERT_EQ(1u, state.pending.size());
  EXPECT_EQ(2u, state.pending[0]);
}

TEST_F(JournalTest, CancelAndFailAreTerminal) {
  {
    RequestJournal j(path_);
    j.record_submit(sample_request(1));
    j.record_cancel(1, "deadline");
    j.record_submit(sample_request(2));
    j.record_start(2, ServiceTier::kEmts, 3);
    j.record_fail(2, "boom");
  }
  const RecoveredState state = RequestJournal::recover(path_);
  EXPECT_EQ(RequestStatus::kCancelled, state.requests.at(1).status);
  EXPECT_EQ("deadline", state.requests.at(1).error);
  EXPECT_EQ(RequestStatus::kFailed, state.requests.at(2).status);
  EXPECT_EQ("boom", state.requests.at(2).error);
  EXPECT_TRUE(state.pending.empty());
}

TEST_F(JournalTest, TornFinalLineIsToleratedAndFlagged) {
  {
    RequestJournal j(path_);
    j.record_submit(sample_request(1));
  }
  {
    // Simulate the crash AppendJournal's fsync-per-line guarantees can
    // leave behind: a half-written final line.
    std::ofstream out(path_, std::ios::app);
    out << R"({"event":"start","id":1,"tier":"em)";
  }
  const RecoveredState state = RequestJournal::recover(path_);
  EXPECT_TRUE(state.tolerated_torn_tail);
  ASSERT_EQ(1u, state.requests.size());
  EXPECT_EQ(RequestStatus::kQueued, state.requests.at(1).status);
  ASSERT_EQ(1u, state.pending.size());
}

TEST_F(JournalTest, MidFileCorruptionThrows) {
  {
    RequestJournal j(path_);
    j.record_submit(sample_request(1));
  }
  {
    // Newline-terminated garbage: durable under the "a line is durable
    // iff newline-terminated" rule, hence corruption — never mistaken
    // for a torn tail, even as the final line.
    std::ofstream out(path_, std::ios::app);
    out << "NOT JSON AT ALL\n";
  }
  EXPECT_THROW((void)RequestJournal::recover(path_), std::runtime_error);
  // Opening for appending recovers too, so it must refuse as well rather
  // than extend a journal recovery will reject.
  EXPECT_THROW(RequestJournal{path_}, std::runtime_error);
}

TEST_F(JournalTest, EventForUnknownIdThrows) {
  {
    // The append side refuses to write an event with no submit record
    // (it would poison recovery), so fabricate one with a raw write.
    RequestJournal j(path_);
    EXPECT_THROW(j.record_complete(99, Json(JsonObject{})),
                 std::logic_error);
    std::ofstream out(path_, std::ios::app);
    out << R"({"event":"complete","id":99,"result":{}})" << "\n";
  }
  EXPECT_THROW((void)RequestJournal::recover(path_), std::runtime_error);
}

TEST_F(JournalTest, ReopeningAppendsRatherThanTruncates) {
  {
    RequestJournal j(path_);
    j.record_submit(sample_request(1));
  }
  {
    RequestJournal j(path_);
    j.record_start(1, ServiceTier::kCpaOneShot, 1);
  }
  const RecoveredState state = RequestJournal::recover(path_);
  EXPECT_EQ(RequestStatus::kRunning, state.requests.at(1).status);
  EXPECT_EQ(ServiceTier::kCpaOneShot, state.requests.at(1).tier);
}

}  // namespace
}  // namespace ptgsched::serve
