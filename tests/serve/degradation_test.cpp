// Degradation-tier tests: the controller must escalate on queue depth or
// p95 latency crossing the high watermarks, de-escalate only below the
// low watermarks (hysteresis — no flapping inside the band), and estimate
// p95 over a sliding window.

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/degradation.hpp"

namespace ptgsched::serve {
namespace {

TierConfig test_config() {
  TierConfig cfg;
  cfg.p95_budget_seconds = 1.0;
  cfg.latency_window = 8;
  cfg.degrade_high = 0.50;
  cfg.degrade_low = 0.30;
  cfg.shed_high = 0.90;
  cfg.shed_low = 0.60;
  return cfg;
}

TEST(ServiceTierNames, RoundTrip) {
  for (const ServiceTier t :
       {ServiceTier::kEmts, ServiceTier::kHeuristic,
        ServiceTier::kCpaOneShot}) {
    EXPECT_EQ(t, service_tier_from_name(service_tier_name(t)));
  }
  EXPECT_THROW((void)service_tier_from_name("bogus"),
               std::invalid_argument);
}

TEST(TierController, NominalLoadStaysAtFullQuality) {
  TierController tc(test_config());
  EXPECT_EQ(ServiceTier::kEmts, tc.decide(0, 10));
  EXPECT_EQ(ServiceTier::kEmts, tc.decide(4, 10));  // below degrade_high
}

TEST(TierController, QueueDepthEscalatesThroughBothWatermarks) {
  TierController tc(test_config());
  EXPECT_EQ(ServiceTier::kHeuristic, tc.decide(5, 10));   // 0.5 >= high
  EXPECT_EQ(ServiceTier::kCpaOneShot, tc.decide(9, 10));  // 0.9 >= shed
  // And straight to the bottom tier from kEmts if the spike is sharp.
  TierController tc2(test_config());
  EXPECT_EQ(ServiceTier::kCpaOneShot, tc2.decide(10, 10));
}

TEST(TierController, P95LatencyAloneEscalates) {
  TierController tc(test_config());
  for (int i = 0; i < 8; ++i) tc.record_latency(2.0);  // 2x the budget
  EXPECT_GT(tc.load_score(0, 10), 1.0);
  EXPECT_EQ(ServiceTier::kCpaOneShot, tc.decide(0, 10));
}

TEST(TierController, HysteresisBandIsSticky) {
  TierController tc(test_config());
  ASSERT_EQ(ServiceTier::kHeuristic, tc.decide(5, 10));
  // Score 0.4 sits between degrade_low (0.3) and degrade_high (0.5):
  // the tier must not flap back.
  EXPECT_EQ(ServiceTier::kHeuristic, tc.decide(4, 10));
  // Only at/below the low watermark does it recover.
  EXPECT_EQ(ServiceTier::kEmts, tc.decide(3, 10));
}

TEST(TierController, RecoveryStepsDownOneBandAtATime) {
  TierController tc(test_config());
  ASSERT_EQ(ServiceTier::kCpaOneShot, tc.decide(10, 10));
  // 0.7 is inside the shed hysteresis band: stay at the bottom.
  EXPECT_EQ(ServiceTier::kCpaOneShot, tc.decide(7, 10));
  // 0.6 <= shed_low: back up one tier, but not two.
  EXPECT_EQ(ServiceTier::kHeuristic, tc.decide(6, 10));
  // 0.3 <= degrade_low: full quality again.
  EXPECT_EQ(ServiceTier::kEmts, tc.decide(3, 10));
}

TEST(TierController, LatencyWindowSlides) {
  TierController tc(test_config());
  for (int i = 0; i < 8; ++i) tc.record_latency(10.0);
  EXPECT_DOUBLE_EQ(10.0, tc.p95_latency());
  // Eight fast completions push the slow ones out of the window.
  for (int i = 0; i < 8; ++i) tc.record_latency(0.01);
  EXPECT_DOUBLE_EQ(0.01, tc.p95_latency());
}

TEST(TierController, RejectsInvertedWatermarks) {
  TierConfig bad = test_config();
  bad.degrade_low = bad.degrade_high;
  EXPECT_THROW(TierController{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace ptgsched::serve
