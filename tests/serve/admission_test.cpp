// Admission-control tests: the bounded queue must refuse (not block) when
// full, count what it sheds, preserve FIFO order, and unblock poppers on
// close. suggest_retry_after must scale with backlog and stay bounded.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/admission.hpp"

namespace ptgsched::serve {
namespace {

TEST(AdmissionQueue, RefusesWhenFullWithoutBlocking) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // returns immediately
  EXPECT_EQ(2u, q.depth());
  EXPECT_EQ(1u, q.shed_count());

  // Draining one slot re-opens admission.
  EXPECT_EQ(1u, q.pop().value());
  EXPECT_TRUE(q.try_push(3));
}

TEST(AdmissionQueue, PopsInSubmissionOrder) {
  AdmissionQueue q(8);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(q.try_push(id));
  }
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(id, q.pop().value());
  }
}

TEST(AdmissionQueue, CloseUnblocksPoppersAndDrainsRemainder) {
  AdmissionQueue q(4);
  ASSERT_TRUE(q.try_push(42));

  std::thread blocked([&] {
    // First pop drains the queued id; the second blocks until close().
    EXPECT_EQ(42u, q.pop().value());
    EXPECT_FALSE(q.pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  blocked.join();

  // A closed queue sheds everything.
  EXPECT_FALSE(q.try_push(7));
}

TEST(AdmissionQueue, ZeroCapacityIsClampedToOne) {
  AdmissionQueue q(0);
  EXPECT_EQ(1u, q.capacity());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(SuggestRetryAfter, ScalesWithBacklogAndLatency) {
  // Deeper backlog or slower service → longer hint.
  EXPECT_LT(suggest_retry_after(1, 2, 0.1), suggest_retry_after(50, 2, 0.1));
  EXPECT_LT(suggest_retry_after(10, 2, 0.1),
            suggest_retry_after(10, 2, 1.0));
  // More workers drain faster → shorter hint.
  EXPECT_GT(suggest_retry_after(10, 1, 0.5),
            suggest_retry_after(10, 8, 0.5));
}

TEST(SuggestRetryAfter, IsBoundedAndHasAFallback) {
  // No latency samples yet: a usable nonzero hint, not 0 or infinity.
  const double hint = suggest_retry_after(0, 2, 0.0);
  EXPECT_GE(hint, 0.05);
  EXPECT_LE(hint, 30.0);
  // Absurd inputs clamp to the [0.05, 30] band.
  EXPECT_DOUBLE_EQ(30.0, suggest_retry_after(100000, 1, 10.0));
  EXPECT_DOUBLE_EQ(0.05, suggest_retry_after(0, 64, 1e-9));
}

}  // namespace
}  // namespace ptgsched::serve
