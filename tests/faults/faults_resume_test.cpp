// Kill-and-resume tests for the --faults campaign mode (ctest labels
// "faults" and "robustness"): a robustness campaign killed by SIGTERM in
// the middle of the fault-injection phase resumes to a report whose
// robustness aggregates are bit-identical to an uninterrupted baseline.

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>

#include "exp/campaign.hpp"
#include "support/error_context.hpp"

namespace ptgsched {
namespace {

CampaignConfig tiny_faults_campaign(const std::string& dir) {
  CampaignConfig cfg;
  cfg.instances = 2;
  cfg.num_tasks = 20;
  cfg.seed = 29;
  cfg.include_emts10 = false;
  cfg.threads = 0;  // keep telemetry counters deterministic
  cfg.output_dir = dir;
  cfg.faults = true;
  cfg.fault_model.crash_rate = 1.0;
  cfg.fault_model.slowdown_rate = 2.0;
  // restart + one heuristic policy: covers the journal/replay machinery
  // without paying for an EMTS run per reschedule in a resume test that
  // executes the campaign three times.
  cfg.reschedule_policies = {"restart", "mcpa"};
  return cfg;
}

/// Zero wall-clock-dependent values (unit timings and the reschedule
/// policies' wall telemetry) so reports compare bit-for-bit on the rest —
/// in particular on every simulated-time robustness number.
Json normalized(const Json& j) {
  static const std::set<std::string> kTimeKeys = {
      "mean_seconds", "sd_seconds", "mean_eval_seconds",
      "policy_wall_seconds"};
  if (j.is_object()) {
    Json o = Json::object();
    for (const auto& [key, value] : j.as_object()) {
      if (kTimeKeys.count(key) != 0 && value.is_number()) {
        o.set(key, 0.0);
      } else {
        o.set(key, normalized(value));
      }
    }
    return o;
  }
  if (j.is_array()) {
    Json a = Json::array();
    for (const Json& v : j.as_array()) a.push_back(normalized(v));
    return a;
  }
  return j;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(FaultsResume, SigtermDuringRobustnessPhaseResumesBitIdentical) {
  const auto base_dir = fresh_dir("ptgsched_faults_resume_base");
  const auto kill_dir = fresh_dir("ptgsched_faults_resume_kill");

  // Uninterrupted baseline, with the robustness phase enabled.
  const Json baseline = run_campaign(tiny_faults_campaign(base_dir.string()));
  EXPECT_FALSE(baseline.at("cancelled").as_bool());
  EXPECT_EQ(baseline.at("failures").size(), 0u);
  ASSERT_TRUE(baseline.contains("robustness"));
  EXPECT_GT(baseline.at("robustness").at("units").as_int(), 0);
  EXPECT_TRUE(
      std::filesystem::exists(base_dir / "robustness_instances.csv"));

  // Kill with a genuine SIGTERM after the second *robustness* unit — the
  // interruption lands inside the fault-injection phase, after some robust
  // units are already journaled.
  {
    CancellationToken cancel;
    install_signal_cancellation(&cancel);
    CampaignConfig cfg = tiny_faults_campaign(kill_dir.string());
    cfg.cancel = &cancel;
    std::size_t robust_units = 0;
    const Json partial = run_campaign(
        cfg, [&](const std::string& phase, std::size_t, std::size_t) {
          if (phase == "robust" && ++robust_units == 2) std::raise(SIGTERM);
        });
    install_signal_cancellation(nullptr);
    EXPECT_TRUE(cancel.cancelled());
    EXPECT_TRUE(partial.at("cancelled").as_bool());
    EXPECT_TRUE(std::filesystem::exists(kill_dir / kCampaignCheckpointFile));
  }

  // Resume: journaled robust units replay verbatim, the rest run fresh.
  CampaignConfig resume_cfg = tiny_faults_campaign(kill_dir.string());
  resume_cfg.resume = true;
  const Json resumed = run_campaign(resume_cfg);
  EXPECT_FALSE(resumed.at("cancelled").as_bool());
  EXPECT_EQ(resumed.at("failures").size(), 0u);

  // The robustness aggregates — and the whole report — are bit-identical
  // modulo recorded wall times.
  EXPECT_EQ(normalized(resumed.at("robustness")).dump(2),
            normalized(baseline.at("robustness")).dump(2));
  EXPECT_EQ(normalized(resumed).dump(2), normalized(baseline).dump(2));

  // The per-instance CSV regenerated on resume matches the baseline's.
  const Json on_disk =
      Json::parse_file((kill_dir / "campaign_report.json").string());
  EXPECT_EQ(normalized(on_disk).dump(2), normalized(baseline).dump(2));
  std::ifstream a(base_dir / "robustness_instances.csv");
  std::ifstream b(kill_dir / "robustness_instances.csv");
  const std::string csv_a((std::istreambuf_iterator<char>(a)),
                          std::istreambuf_iterator<char>());
  const std::string csv_b((std::istreambuf_iterator<char>(b)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(csv_a, csv_b);

  std::filesystem::remove_all(base_dir);
  std::filesystem::remove_all(kill_dir);
}

TEST(FaultsResume, PlainJournalDoesNotResumeIntoFaultsCampaign) {
  const auto dir = fresh_dir("ptgsched_faults_resume_mixed");
  CampaignConfig plain = tiny_faults_campaign(dir.string());
  plain.faults = false;
  (void)run_campaign(plain);

  // The --faults fingerprint differs, so the plain journal is rejected
  // instead of being silently replayed into a robustness campaign.
  CampaignConfig cfg = tiny_faults_campaign(dir.string());
  cfg.resume = true;
  EXPECT_THROW((void)run_campaign(cfg), LoadError);
  std::filesystem::remove_all(dir);
}

TEST(FaultsResume, FaultModelChangeInvalidatesJournal) {
  const auto dir = fresh_dir("ptgsched_faults_resume_model");
  (void)run_campaign(tiny_faults_campaign(dir.string()));

  CampaignConfig cfg = tiny_faults_campaign(dir.string());
  cfg.fault_model.crash_rate = 2.0;  // different failure regime
  cfg.resume = true;
  EXPECT_THROW((void)run_campaign(cfg), LoadError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ptgsched
