// Fault-tolerance tests (ctest label "faults"): evaluator faults are
// isolated, the persistent thread pool stays usable after an exception,
// elitism survives poisoned fitness values, cancellation drains cleanly,
// and the experiment sweep retries / classifies / journals failing units.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>

#include "../common/fault_injection.hpp"
#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "eval/evaluation_engine.hpp"
#include "exp/experiment.hpp"
#include "sched/validate.hpp"

namespace ptgsched {
namespace {

using testutil::FaultInjectingEvaluator;
using testutil::FaultMode;
using testutil::InjectedFault;

struct EsFixture {
  Ptg g;
  Cluster cluster;
  AmdahlModel model;
  EvaluationEngine engine;
  EsConfig es_cfg;
  MutateFn mutate;
  std::vector<Individual> seeds;

  explicit EsFixture(std::size_t threads)
      : g([] {
          Rng rng(7);
          return make_fft_ptg(8, rng);
        }()),
        cluster(platform_by_name("chti")),
        engine(g, model, cluster, {},
               [&] {
                 EvalEngineConfig ec;
                 ec.threads = threads;
                 return ec;
               }()) {
    es_cfg.mu = 4;
    es_cfg.lambda = 12;
    es_cfg.generations = 4;
    es_cfg.seed = 3;
    mutate = Emts::make_mutator(MutationParams{}, 0.33, es_cfg.generations,
                                cluster.num_processors());
    Individual seed;
    seed.genes = Allocation(g.num_tasks(), 1);
    seed.origin = "all-ones";
    seeds.push_back(std::move(seed));
  }
};

TEST(FaultInjection, ThrowPropagatesAndPoolStaysUsable) {
  EsFixture fx(4);
  FaultInjectingEvaluator faulty(fx.engine, FaultMode::kThrow, 30);
  EvolutionStrategy es(fx.es_cfg, faulty, fx.mutate);
  EXPECT_THROW((void)es.run(fx.seeds), InjectedFault);
  EXPECT_TRUE(faulty.fired());

  // The engine (and its persistent pool) survive the exception: a clean
  // run on the very same engine completes and produces a finite best.
  EvolutionStrategy clean(fx.es_cfg, fx.engine, fx.mutate);
  const EsResult r = clean.run(fx.seeds);
  EXPECT_TRUE(std::isfinite(r.best.fitness));
  EXPECT_EQ(r.generations_run, fx.es_cfg.generations);
}

TEST(FaultInjection, InfinityFitnessPreservesElitism) {
  EsFixture fx(0);
  // Poison an offspring evaluation mid-run; under plus selection the
  // per-generation best must still never get worse.
  FaultInjectingEvaluator faulty(fx.engine, FaultMode::kInfinity, 20);
  EvolutionStrategy es(fx.es_cfg, faulty, fx.mutate);
  const EsResult r = es.run(fx.seeds);
  EXPECT_TRUE(faulty.fired());
  EXPECT_TRUE(std::isfinite(r.best.fitness));
  ASSERT_FALSE(r.history.empty());
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best, r.history[i - 1].best);
  }
}

TEST(FaultInjection, StallingEvaluationStillCompletes) {
  EsFixture fx(4);
  FaultInjectingEvaluator faulty(fx.engine, FaultMode::kStall, 10);
  faulty.stall = std::chrono::milliseconds(50);
  EvolutionStrategy es(fx.es_cfg, faulty, fx.mutate);
  const EsResult r = es.run(fx.seeds);
  EXPECT_TRUE(faulty.fired());
  EXPECT_TRUE(std::isfinite(r.best.fitness));
}

TEST(FaultInjection, CancelMidGenerationDrainsPoolAndKeepsBestSoFar) {
  CancellationToken cancel;
  EsFixture fx(4);
  EvalEngineConfig ec;
  ec.threads = 4;
  ec.cancel = &cancel;
  EvaluationEngine engine(fx.g, fx.model, fx.cluster, {}, ec);
  EsConfig cfg = fx.es_cfg;
  cfg.generations = 50;
  cfg.cancel = &cancel;
  cfg.on_generation = [&](std::size_t gen, double, double) {
    if (gen == 2) cancel.request_cancel();
  };
  EvolutionStrategy es(cfg, engine, fx.mutate);
  const EsResult r = es.run(fx.seeds);
  EXPECT_TRUE(r.stopped_by_cancellation);
  EXPECT_LT(r.generations_run, cfg.generations);
  // Best-so-far comes from the last fully selected population, never from
  // a torn (short-circuited to +inf) batch.
  EXPECT_TRUE(std::isfinite(r.best.fitness));
}

TEST(FaultInjection, EmtsSurfacesCancellationFlag) {
  CancellationToken cancel;
  Rng rng(5);
  const Ptg g = make_fft_ptg(8, rng);
  const Cluster cluster = platform_by_name("grelon");
  const AmdahlModel model;
  EmtsConfig cfg = emts5_config();
  cfg.generations = 1000;
  cfg.seed = 21;
  cfg.cancel = &cancel;
  cancel.request_cancel();  // trip before the run even starts
  const EmtsResult r = Emts(cfg).schedule(g, model, cluster);
  EXPECT_TRUE(r.cancelled);
  // Seeds are evaluated exactly even under a pending cancel, so the
  // returned best-so-far schedule is still valid.
  EXPECT_NO_THROW(
      validate_schedule(r.schedule, g, r.best_allocation, model, cluster));
}

// --- run_comparison unit isolation / retry / taxonomy -------------------

ComparisonConfig tiny_comparison() {
  ComparisonConfig cfg;
  cfg.classes = {"fft"};
  cfg.platforms = {"chti"};
  cfg.baselines = {"mcpa"};
  cfg.num_tasks = 8;
  cfg.instances = 3;
  cfg.seed = 17;
  cfg.emts = emts5_config();
  cfg.emts.mu = 3;
  cfg.emts.lambda = 6;
  cfg.emts.generations = 2;
  return cfg;
}

TEST(UnitIsolation, TransientFailureIsRetriedWithFreshSeed) {
  ComparisonHooks hooks;
  hooks.max_retries = 1;
  hooks.before_attempt = [](const std::string&, const std::string&,
                            std::size_t index, int attempt) {
    if (index == 1 && attempt == 0) {
      throw std::runtime_error("transient evaluator glitch");
    }
  };
  const ComparisonResult r = run_comparison(tiny_comparison(), {}, hooks);
  EXPECT_FALSE(r.cancelled);
  EXPECT_TRUE(r.failures.empty());
  ASSERT_EQ(r.instances.size(), 3u);
  EXPECT_EQ(r.instances[0].retries, 0);
  EXPECT_EQ(r.instances[1].retries, 1);  // succeeded on the retry
  EXPECT_EQ(r.instances[2].retries, 0);
}

TEST(UnitIsolation, PermanentFailureIsRecordedAndSweepContinues) {
  ComparisonHooks hooks;
  hooks.max_retries = 2;
  hooks.before_attempt = [](const std::string&, const std::string&,
                            std::size_t index, int) {
    if (index == 0) throw std::runtime_error("hard evaluator fault");
  };
  const ComparisonResult r = run_comparison(tiny_comparison(), {}, hooks);
  EXPECT_FALSE(r.cancelled);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].index, 0u);
  EXPECT_EQ(r.failures[0].kind, UnitErrorKind::kEvalError);
  EXPECT_EQ(r.failures[0].attempts, 3);  // 1 try + 2 retries, all failed
  EXPECT_EQ(r.instances.size(), 2u);     // the other units still ran
  // Cells aggregate over the surviving instances.
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_EQ(r.cells[0].ratio.n, 2u);
}

TEST(UnitIsolation, InputErrorsAreNotRetried) {
  ComparisonHooks hooks;
  hooks.max_retries = 5;
  int attempts_seen = 0;
  hooks.before_attempt = [&](const std::string&, const std::string&,
                             std::size_t index, int) {
    if (index == 2) {
      ++attempts_seen;
      throw std::invalid_argument("malformed unit input");
    }
  };
  const ComparisonResult r = run_comparison(tiny_comparison(), {}, hooks);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].kind, UnitErrorKind::kInputError);
  EXPECT_EQ(r.failures[0].attempts, 1);  // deterministic: retry is futile
  EXPECT_EQ(attempts_seen, 1);
}

TEST(UnitIsolation, DeadlineErrorClassifiesAsTimeout) {
  ComparisonHooks hooks;
  hooks.before_attempt = [](const std::string&, const std::string&,
                            std::size_t index, int) {
    if (index == 0) throw DeadlineError("unit exceeded deadline");
  };
  const ComparisonResult r = run_comparison(tiny_comparison(), {}, hooks);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].kind, UnitErrorKind::kTimeout);
  EXPECT_STREQ(unit_error_kind_name(r.failures[0].kind), "timeout");
}

TEST(UnitIsolation, CancelReasonRefinesTheTaxonomy) {
  // A CancelledError that records a deadline reason is a timeout in the
  // failure taxonomy; user and shutdown reasons stay "cancelled".
  const CancelledError deadline("d", CancelReason::kDeadline);
  const CancelledError user("u", CancelReason::kUser);
  const CancelledError shutdown("s", CancelReason::kShutdown);
  const CancelledError legacy("l");
  EXPECT_EQ(classify_unit_error(deadline), UnitErrorKind::kTimeout);
  EXPECT_EQ(classify_unit_error(user), UnitErrorKind::kCancelled);
  EXPECT_EQ(classify_unit_error(shutdown), UnitErrorKind::kCancelled);
  EXPECT_EQ(classify_unit_error(legacy), UnitErrorKind::kCancelled);
}

TEST(UnitIsolation, CancellationStopsTheSweep) {
  ComparisonHooks hooks;
  hooks.before_attempt = [](const std::string&, const std::string&,
                            std::size_t index, int) {
    if (index == 1) throw CancelledError("operator interrupt");
  };
  const ComparisonResult r = run_comparison(tiny_comparison(), {}, hooks);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.instances.size(), 1u);  // unit 0 only; 1 cancelled, 2 skipped
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].kind, UnitErrorKind::kCancelled);
}

TEST(UnitIsolation, UnitDeadlinePlumbsIntoTimeBudget) {
  ComparisonConfig cfg = tiny_comparison();
  cfg.instances = 1;
  cfg.emts.generations = 100000;  // would run ~forever without the deadline
  ComparisonHooks hooks;
  hooks.unit_deadline_seconds = 0.05;
  const ComparisonResult r = run_comparison(cfg, {}, hooks);
  ASSERT_EQ(r.instances.size(), 1u);
  EXPECT_TRUE(r.instances[0].hit_time_budget);
  EXPECT_GT(r.instances[0].emts_makespan, 0.0);  // valid best-so-far
}

TEST(UnitIsolation, CheckpointReplayReproducesBitIdenticalResults) {
  const ComparisonConfig cfg = tiny_comparison();

  // First run: journal every unit through on_unit (JSON round-trip, as the
  // campaign checkpoint does).
  std::map<std::string, Json> journal;
  ComparisonHooks record;
  record.on_unit = [&](const InstanceResult& ir) {
    journal[ir.cls + '|' + ir.platform + '|' + std::to_string(ir.index)] =
        instance_result_to_json(ir);
  };
  const ComparisonResult first = run_comparison(cfg, {}, record);
  ASSERT_EQ(journal.size(), 3u);

  // Second run: every unit replays from the journal; executing any unit is
  // an error (before_attempt throws).
  ComparisonHooks replay;
  replay.lookup = [&](const std::string& cls, const std::string& platform,
                      std::size_t index) -> std::optional<InstanceResult> {
    const auto it =
        journal.find(cls + '|' + platform + '|' + std::to_string(index));
    if (it == journal.end()) return std::nullopt;
    return instance_result_from_json(it->second);
  };
  replay.before_attempt = [](const std::string&, const std::string&,
                             std::size_t, int) {
    FAIL() << "journaled unit was re-executed";
  };
  const ComparisonResult second = run_comparison(cfg, {}, replay);

  ASSERT_EQ(second.instances.size(), first.instances.size());
  for (std::size_t i = 0; i < first.instances.size(); ++i) {
    // Bit-identical through the JSON round-trip (%.17g doubles).
    EXPECT_EQ(instance_result_to_json(first.instances[i]),
              instance_result_to_json(second.instances[i]));
  }
  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(second.cells[i].ratio.mean, first.cells[i].ratio.mean);
    EXPECT_EQ(second.cells[i].ratio.lo, first.cells[i].ratio.lo);
    EXPECT_EQ(second.cells[i].ratio.hi, first.cells[i].ratio.hi);
  }
}

TEST(UnitIsolation, DefaultHooksMatchHistoricalTrajectory) {
  // A retried unit re-derives its seed; attempt 0 must stay bit-compatible
  // with the pre-fault-tolerance derivation, so default-hooks runs are
  // reproducible across versions. Proxy: two plain runs agree exactly.
  const ComparisonResult a = run_comparison(tiny_comparison());
  const ComparisonResult b = run_comparison(tiny_comparison(), {}, {});
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (std::size_t i = 0; i < a.instances.size(); ++i) {
    EXPECT_EQ(a.instances[i].emts_makespan, b.instances[i].emts_makespan);
  }
}

TEST(UnitIsolation, RetriedUnitUsesDifferentSeedStream) {
  // The retry salt must actually change the trajectory: run instance 1
  // normally, then force its first attempt to fail and compare. (Equality
  // would mean the retry replays the exact failing trajectory.)
  const ComparisonResult plain = run_comparison(tiny_comparison());

  ComparisonHooks hooks;
  hooks.max_retries = 1;
  hooks.before_attempt = [](const std::string&, const std::string&,
                            std::size_t index, int attempt) {
    if (index == 1 && attempt == 0) throw std::runtime_error("glitch");
  };
  const ComparisonResult retried =
      run_comparison(tiny_comparison(), {}, hooks);
  ASSERT_EQ(plain.instances.size(), retried.instances.size());
  // Same unit, different attempt -> different evaluation trajectory. The
  // makespans may coincide (both converge), but the evaluation count or
  // makespan differs unless the streams were identical AND converged; we
  // assert only that the retry actually re-ran the unit.
  EXPECT_EQ(retried.instances[1].retries, 1);
  EXPECT_GT(retried.instances[1].emts_makespan, 0.0);
}

}  // namespace
}  // namespace ptgsched
