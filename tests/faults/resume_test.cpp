// Kill-and-resume tests (ctest label "faults"): a campaign killed mid-run
// by a real SIGTERM leaves a durable checkpoint journal behind, and
// --resume completes it with a report identical to an uninterrupted
// baseline (modulo the wall-clock seconds recorded while units ran).

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>

#include "exp/campaign.hpp"
#include "support/error_context.hpp"

namespace ptgsched {
namespace {

CampaignConfig tiny_campaign(const std::string& dir) {
  CampaignConfig cfg;
  cfg.instances = 2;
  cfg.num_tasks = 20;
  cfg.seed = 13;
  cfg.include_emts10 = false;
  cfg.threads = 0;  // keep telemetry counters deterministic
  cfg.output_dir = dir;
  return cfg;
}

/// Zero the wall-clock-dependent values so reports from different runs can
/// be compared bit-for-bit on everything else.
Json normalized(const Json& j) {
  static const std::set<std::string> kTimeKeys = {
      "mean_seconds", "sd_seconds", "mean_eval_seconds"};
  if (j.is_object()) {
    Json o = Json::object();
    for (const auto& [key, value] : j.as_object()) {
      if (kTimeKeys.count(key) != 0 && value.is_number()) {
        o.set(key, 0.0);
      } else {
        o.set(key, normalized(value));
      }
    }
    return o;
  }
  if (j.is_array()) {
    Json a = Json::array();
    for (const Json& v : j.as_array()) a.push_back(normalized(v));
    return a;
  }
  return j;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Resume, SigtermKillAndResumeMatchesUninterruptedBaseline) {
  const auto base_dir = fresh_dir("ptgsched_resume_base");
  const auto kill_dir = fresh_dir("ptgsched_resume_kill");

  // Uninterrupted baseline.
  const Json baseline = run_campaign(tiny_campaign(base_dir.string()));
  EXPECT_FALSE(baseline.at("cancelled").as_bool());
  EXPECT_EQ(baseline.at("failures").size(), 0u);

  // Interrupted run: a genuine SIGTERM through the installed handler after
  // the 5th completed unit (raised from the progress callback, so the kill
  // lands at a deterministic unit boundary).
  {
    CancellationToken cancel;
    install_signal_cancellation(&cancel);
    CampaignConfig cfg = tiny_campaign(kill_dir.string());
    cfg.cancel = &cancel;
    std::size_t units = 0;
    const Json partial = run_campaign(
        cfg, [&](const std::string&, std::size_t, std::size_t) {
          if (++units == 5) std::raise(SIGTERM);
        });
    install_signal_cancellation(nullptr);
    EXPECT_TRUE(cancel.cancelled());
    EXPECT_TRUE(partial.at("cancelled").as_bool());
    // The partial report was still written (atomically), and the journal
    // holds the completed units.
    EXPECT_TRUE(
        std::filesystem::exists(kill_dir / "campaign_report.json"));
    EXPECT_TRUE(std::filesystem::exists(kill_dir / kCampaignCheckpointFile));
  }

  // Resume: journaled units replay verbatim, the rest run fresh.
  CampaignConfig resume_cfg = tiny_campaign(kill_dir.string());
  resume_cfg.resume = true;
  const Json resumed = run_campaign(resume_cfg);
  EXPECT_FALSE(resumed.at("cancelled").as_bool());
  EXPECT_EQ(resumed.at("failures").size(), 0u);

  // Identical modulo recorded wall times.
  EXPECT_EQ(normalized(resumed).dump(2), normalized(baseline).dump(2));

  // The on-disk report matches the returned one.
  const Json on_disk =
      Json::parse_file((kill_dir / "campaign_report.json").string());
  EXPECT_EQ(normalized(on_disk).dump(2), normalized(baseline).dump(2));

  std::filesystem::remove_all(base_dir);
  std::filesystem::remove_all(kill_dir);
}

TEST(Resume, ToleratesTornFinalJournalLine) {
  const auto dir = fresh_dir("ptgsched_resume_torn");
  const Json baseline = run_campaign(tiny_campaign(dir.string()));

  // Simulate a crash mid-append: a half-written unit line without a
  // trailing newline.
  {
    std::ofstream out(dir / kCampaignCheckpointFile,
                      std::ios::app | std::ios::binary);
    out << R"({"unit": {"pha)";
  }

  CampaignConfig cfg = tiny_campaign(dir.string());
  cfg.resume = true;
  const Json resumed = run_campaign(cfg);
  EXPECT_EQ(normalized(resumed).dump(2), normalized(baseline).dump(2));
  std::filesystem::remove_all(dir);
}

TEST(Resume, RejectsCheckpointFromDifferentConfiguration) {
  const auto dir = fresh_dir("ptgsched_resume_mismatch");
  (void)run_campaign(tiny_campaign(dir.string()));

  CampaignConfig cfg = tiny_campaign(dir.string());
  cfg.seed = 14;  // different campaign; its journal must not be replayed
  cfg.resume = true;
  EXPECT_THROW((void)run_campaign(cfg), LoadError);
  std::filesystem::remove_all(dir);
}

TEST(Resume, FreshRunTruncatesStaleJournal) {
  const auto dir = fresh_dir("ptgsched_resume_truncate");
  (void)run_campaign(tiny_campaign(dir.string()));

  // A non-resume run over the same directory must not replay old units:
  // the journal is truncated and rewritten from scratch.
  const Json again = run_campaign(tiny_campaign(dir.string()));
  EXPECT_FALSE(again.at("cancelled").as_bool());

  // And the rewritten journal resumes cleanly.
  CampaignConfig cfg = tiny_campaign(dir.string());
  cfg.resume = true;
  const Json resumed = run_campaign(cfg);
  EXPECT_EQ(normalized(resumed).dump(2), normalized(again).dump(2));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ptgsched
