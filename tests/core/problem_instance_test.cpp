// Tests for the shared ProblemInstance core: time-table fidelity against
// the wrapped model, structural precomputation (topological order,
// precedence levels), sequential levels, and the create/borrow ownership
// contract (DESIGN.md section 9).

#include "core/problem_instance.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "../common/test_graphs.hpp"
#include "daggen/corpus.hpp"
#include "model/execution_time.hpp"
#include "ptg/algorithms.hpp"
#include "ptg/analysis.hpp"

namespace ptgsched {
namespace {

using testutil::FixedTimeModel;
using testutil::unit_cluster;

TEST(ProblemInstance, TimeTableMatchesModel) {
  const Ptg g = irregular_corpus(40, 1, 7).front();
  const Cluster c = chti();
  const SyntheticModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);

  ASSERT_EQ(pi->num_tasks(), g.num_tasks());
  ASSERT_EQ(pi->num_processors(), c.num_processors());
  ASSERT_EQ(pi->time_table().size(),
            g.num_tasks() * static_cast<std::size_t>(c.num_processors()));
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto row = pi->times_of(v);
    ASSERT_EQ(row.size(), static_cast<std::size_t>(c.num_processors()));
    for (int p = 1; p <= c.num_processors(); ++p) {
      const double expected = model.time(g.task(v), p, c);
      EXPECT_DOUBLE_EQ(pi->time(v, p), expected);
      EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(p - 1)], expected);
    }
  }
}

TEST(ProblemInstance, TimeRejectsOutOfRangeProcessorCount) {
  const Ptg g = testutil::chain3();
  const Cluster c = unit_cluster(4);
  const FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  EXPECT_THROW((void)pi->time(0, 0), ModelError);
  EXPECT_THROW((void)pi->time(0, 5), ModelError);
  EXPECT_NO_THROW((void)pi->time(0, 4));
}

TEST(ProblemInstance, StructureMatchesFreeFunctions) {
  const Ptg g = irregular_corpus(35, 1, 11).front();
  const Cluster c = chti();
  const SyntheticModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);

  const std::vector<TaskId> topo = topological_order(g);
  ASSERT_EQ(pi->topo_order().size(), topo.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    EXPECT_EQ(pi->topo_order()[i], topo[i]);
  }

  const std::vector<int> levels = precedence_levels(g);
  ASSERT_EQ(pi->precedence_levels().size(), levels.size());
  int max_level = -1;
  std::size_t grouped = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(pi->precedence_levels()[v], levels[v]);
    max_level = std::max(max_level, levels[v]);
  }
  EXPECT_EQ(pi->num_levels(), max_level + 1);
  ASSERT_EQ(pi->tasks_by_level().size(),
            static_cast<std::size_t>(pi->num_levels()));
  for (int l = 0; l < pi->num_levels(); ++l) {
    for (const TaskId v : pi->tasks_by_level()[static_cast<std::size_t>(l)]) {
      EXPECT_EQ(levels[v], l);
      ++grouped;
    }
  }
  EXPECT_EQ(grouped, g.num_tasks());
}

TEST(ProblemInstance, SequentialLevelsUseSingleProcessorTimes) {
  const Ptg g = testutil::chain3();  // flops 1, 2, 3 in a chain
  const Cluster c = unit_cluster(4);
  const FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  // bl(a) = 1+2+3, bl(b) = 2+3, bl(c) = 3; tl mirrors from the source.
  EXPECT_DOUBLE_EQ(pi->bottom_levels_seq()[0], 6.0);
  EXPECT_DOUBLE_EQ(pi->bottom_levels_seq()[1], 5.0);
  EXPECT_DOUBLE_EQ(pi->bottom_levels_seq()[2], 3.0);
  EXPECT_DOUBLE_EQ(pi->top_levels_seq()[0], 0.0);
  EXPECT_DOUBLE_EQ(pi->top_levels_seq()[1], 1.0);
  EXPECT_DOUBLE_EQ(pi->top_levels_seq()[2], 3.0);
  EXPECT_DOUBLE_EQ(pi->sequential_critical_path(), 6.0);
}

TEST(ProblemInstance, CreateKeepsInputsAlive) {
  auto graph = std::make_shared<const Ptg>(testutil::diamond());
  auto model = std::make_shared<const FixedTimeModel>();
  auto cluster = std::make_shared<const Cluster>(unit_cluster(4));
  const auto pi = ProblemInstance::create(graph, model, cluster);

  // Drop every external reference: the instance co-owns its inputs.
  graph.reset();
  model.reset();
  cluster.reset();
  EXPECT_EQ(pi->num_tasks(), 4u);
  EXPECT_DOUBLE_EQ(pi->time(1, 1), 4.0);  // diamond task l, flops 4
  EXPECT_EQ(pi->cluster().num_processors(), 4);
}

TEST(ProblemInstance, RejectsNullInputsAndInvalidGraphs) {
  auto model = std::make_shared<const FixedTimeModel>();
  auto cluster = std::make_shared<const Cluster>(unit_cluster(2));
  EXPECT_THROW((void)ProblemInstance::create(nullptr, model, cluster),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ProblemInstance::create(
          std::make_shared<const Ptg>(testutil::chain3()), nullptr, cluster),
      std::invalid_argument);
  EXPECT_THROW((void)ProblemInstance::create(
                   std::make_shared<const Ptg>(testutil::chain3()), model,
                   nullptr),
               std::invalid_argument);
}

TEST(ProblemInstance, ProcTimeTableScalesSequentialTimesBySpeed) {
  const Ptg g = testutil::chain3();
  const Cluster c("het", 4, 1.0, {1.0, 0.5, 2.0, 0.25});
  const testutil::FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  ASSERT_TRUE(pi->heterogeneous());
  const auto table = pi->proc_time_table();
  ASSERT_EQ(table.size(), g.num_tasks() * 4);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const double t1 = model.time(g.task(v), 1, c);
    EXPECT_EQ(pi->proc_time(v, 0), t1);
    EXPECT_EQ(pi->proc_time(v, 1), t1 / 0.5);
    EXPECT_EQ(pi->proc_time(v, 2), t1 / 2.0);
    EXPECT_EQ(pi->proc_time(v, 3), t1 / 0.25);
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(table[v * 4 + static_cast<std::size_t>(j)],
                pi->proc_time(v, j));
    }
  }
  EXPECT_THROW((void)pi->proc_time(0, 4), ModelError);
  EXPECT_THROW((void)pi->proc_time(0, -1), ModelError);
}

TEST(ProblemInstance, AverageSpeedRanksFollowTheHeftRecurrence) {
  // chain3: a(1) -> b(2) -> c(3), unit mean speed would give bl = suffix
  // sums. Speeds {1.0, 0.5} have mean row time t1 * (1 + 2) / 2 = 1.5 t1,
  // and a uniform 0.5 link cost enters once per edge.
  const Ptg g = testutil::chain3();
  const Cluster c("het", 2, 1.0, {1.0, 0.5}, {0.0, 0.5, 0.5, 0.0});
  const testutil::FixedTimeModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  const double cbar = c.mean_comm_cost();
  EXPECT_DOUBLE_EQ(cbar, 0.5);
  const auto bl = pi->bottom_levels_avg();
  const auto tl = pi->top_levels_avg();
  // wbar: a = 1.5, b = 3.0, c = 4.5.
  EXPECT_DOUBLE_EQ(bl[2], 4.5);
  EXPECT_DOUBLE_EQ(bl[1], 3.0 + 0.5 + 4.5);
  EXPECT_DOUBLE_EQ(bl[0], 1.5 + 0.5 + 8.0);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 1.5 + 0.5);
  EXPECT_DOUBLE_EQ(tl[2], 2.0 + 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(pi->avg_critical_path(), bl[0]);
  // Entry + exit levels are consistent: bl[v] + tl[v] spans the whole
  // critical path through v.
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_LE(bl[v] + tl[v], pi->avg_critical_path() + 1e-12);
  }
}

TEST(ProblemInstance, WarmIsIdempotentAndSharedAcrossThreads) {
  const Ptg g = irregular_corpus(30, 1, 13).front();
  const Cluster c = chti();
  const SyntheticModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);
  pi->warm();
  pi->warm();  // second call must be a no-op

  // Concurrent readers of the lazily-built blocks see one table.
  const double expected = pi->time(0, 1);
  std::vector<std::thread> readers;
  std::vector<double> seen(4, 0.0);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    readers.emplace_back([&, t] {
      seen[t] = pi->time_table()[0] + pi->bottom_levels_seq()[0] -
                pi->bottom_levels_seq()[0];
    });
  }
  for (auto& th : readers) th.join();
  for (const double s : seen) EXPECT_DOUBLE_EQ(s, expected);
}

}  // namespace
}  // namespace ptgsched
