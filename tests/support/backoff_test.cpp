// Tests for the deterministic exponential-backoff helper used by the
// campaign retry loops.

#include "support/backoff.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>

#include "support/cancellation.hpp"

namespace ptgsched {
namespace {

TEST(Backoff, DeterministicForSeedAndAttempt) {
  const double a = backoff_delay_seconds(3, 0.1, 0.0, 42);
  const double b = backoff_delay_seconds(3, 0.1, 0.0, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(backoff_delay_seconds(3, 0.1, 0.0, 43), a);
  EXPECT_NE(backoff_delay_seconds(4, 0.1, 0.0, 42), a);
}

TEST(Backoff, GrowsExponentiallyWithinJitterBounds) {
  // delay = base * 2^(attempt-1) * jitter, jitter in [0.5, 1.5).
  const double base = 0.25;
  double scale = 1.0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double d = backoff_delay_seconds(attempt, base, 0.0, 7);
    EXPECT_GE(d, base * scale * 0.5);
    EXPECT_LT(d, base * scale * 1.5);
    scale *= 2.0;
  }
}

TEST(Backoff, CapClampsTheDelay) {
  const double d = backoff_delay_seconds(20, 1.0, 2.5, 7);
  EXPECT_LE(d, 2.5);
  // Cap of zero means uncapped.
  EXPECT_GT(backoff_delay_seconds(20, 1.0, 0.0, 7), 2.5);
}

TEST(Backoff, NonPositiveBaseDisablesBackoff) {
  EXPECT_EQ(backoff_delay_seconds(5, 0.0, 10.0, 7), 0.0);
  EXPECT_EQ(backoff_delay_seconds(5, -1.0, 10.0, 7), 0.0);
}

TEST(Backoff, HugeAttemptDoesNotOverflow) {
  const double d = backoff_delay_seconds(1'000'000, 0.001, 30.0, 7);
  EXPECT_LE(d, 30.0);
  EXPECT_GE(d, 0.0);
}

TEST(Backoff, RejectsBadArguments) {
  EXPECT_THROW((void)backoff_delay_seconds(0, 1.0, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)backoff_delay_seconds(-1, 1.0, 0.0, 1),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)backoff_delay_seconds(1, nan, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)backoff_delay_seconds(1, 1.0, nan, 1),
               std::invalid_argument);
}

TEST(Backoff, SleepReturnsImmediatelyOnCancelledToken) {
  CancellationToken token;
  token.request_cancel();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(backoff_sleep(5.0, &token));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
}

TEST(Backoff, SleepWithoutTokenCompletes) {
  EXPECT_TRUE(backoff_sleep(0.01, nullptr));
  EXPECT_TRUE(backoff_sleep(0.0, nullptr));
  EXPECT_TRUE(backoff_sleep(-1.0, nullptr));
}

}  // namespace
}  // namespace ptgsched
