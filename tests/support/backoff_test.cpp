// Tests for the deterministic exponential-backoff helper used by the
// campaign retry loops.

#include "support/backoff.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "support/cancellation.hpp"

namespace ptgsched {
namespace {

TEST(Backoff, DeterministicForSeedAndAttempt) {
  const double a = backoff_delay_seconds(3, 0.1, 0.0, 42);
  const double b = backoff_delay_seconds(3, 0.1, 0.0, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(backoff_delay_seconds(3, 0.1, 0.0, 43), a);
  EXPECT_NE(backoff_delay_seconds(4, 0.1, 0.0, 42), a);
}

TEST(Backoff, GrowsExponentiallyWithinJitterBounds) {
  // delay = base * 2^(attempt-1) * jitter, jitter in [0.5, 1.5).
  const double base = 0.25;
  double scale = 1.0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double d = backoff_delay_seconds(attempt, base, 0.0, 7);
    EXPECT_GE(d, base * scale * 0.5);
    EXPECT_LT(d, base * scale * 1.5);
    scale *= 2.0;
  }
}

TEST(Backoff, CapClampsTheDelay) {
  const double d = backoff_delay_seconds(20, 1.0, 2.5, 7);
  EXPECT_LE(d, 2.5);
  // Cap of zero means uncapped.
  EXPECT_GT(backoff_delay_seconds(20, 1.0, 0.0, 7), 2.5);
}

TEST(Backoff, NonPositiveBaseDisablesBackoff) {
  EXPECT_EQ(backoff_delay_seconds(5, 0.0, 10.0, 7), 0.0);
  EXPECT_EQ(backoff_delay_seconds(5, -1.0, 10.0, 7), 0.0);
}

TEST(Backoff, HugeAttemptDoesNotOverflow) {
  const double d = backoff_delay_seconds(1'000'000, 0.001, 30.0, 7);
  EXPECT_LE(d, 30.0);
  EXPECT_GE(d, 0.0);
}

TEST(Backoff, RejectsBadArguments) {
  EXPECT_THROW((void)backoff_delay_seconds(0, 1.0, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)backoff_delay_seconds(-1, 1.0, 0.0, 1),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)backoff_delay_seconds(1, nan, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)backoff_delay_seconds(1, 1.0, nan, 1),
               std::invalid_argument);
}

TEST(Backoff, DelaySeriesTruncatesExactlyAtTheDeadline) {
  // A retry loop passes the *remaining* deadline as the cap. Walk a delay
  // series against a fixed budget: every delay must fit the remaining
  // budget exactly, and once the uncapped delay overtakes the budget the
  // returned delay must equal the remainder bit for bit (clamping is
  // std::min, not an approximation).
  const double base = 0.5;
  double remaining = 2.0;
  bool clamped = false;
  for (int attempt = 1; attempt <= 12 && remaining > 0.0; ++attempt) {
    const double d = backoff_delay_seconds(attempt, base, remaining, 99);
    ASSERT_LE(d, remaining);
    const double uncapped = backoff_delay_seconds(attempt, base, 0.0, 99);
    if (uncapped > remaining) {
      EXPECT_EQ(d, remaining);  // truncated exactly at the deadline
      clamped = true;
    } else {
      EXPECT_EQ(d, uncapped);
    }
    remaining -= d;
  }
  EXPECT_TRUE(clamped);  // the series did hit the deadline cap
  EXPECT_EQ(remaining, 0.0);
}

TEST(Backoff, ZeroBudgetDeadlineNeverSleeps) {
  // cap == 0 is "uncapped" for historical reasons; an exhausted budget is
  // expressed as a negative cap and must yield a zero delay, so a caller
  // computing `deadline - elapsed` can pass the raw difference.
  EXPECT_GT(backoff_delay_seconds(3, 1.0, 0.0, 7), 0.0);   // uncapped
  EXPECT_EQ(backoff_delay_seconds(3, 1.0, -0.0001, 7), 0.0);
  EXPECT_EQ(backoff_delay_seconds(3, 1.0, -5.0, 7), 0.0);
  EXPECT_EQ(backoff_delay_seconds(1, 0.001, -1e-12, 7), 0.0);
}

TEST(Backoff, TinyRemainingBudgetClampsToTheBudget) {
  // One nanosecond of budget left: the delay is that nanosecond, not the
  // exponential schedule.
  const double d = backoff_delay_seconds(10, 1.0, 1e-9, 7);
  EXPECT_EQ(d, 1e-9);
}

TEST(Backoff, CancellationFiringMidSleepCutsTheWaitShort) {
  CancellationToken token;
  std::thread trip([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.request_cancel(CancelReason::kShutdown);
  });
  const auto t0 = std::chrono::steady_clock::now();
  const bool completed = backoff_sleep(30.0, &token);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  trip.join();
  EXPECT_FALSE(completed);  // cut short, not slept to completion
  EXPECT_LT(elapsed, 5.0);  // promptly (30 s sleep ended within slices)
  EXPECT_EQ(token.reason(), CancelReason::kShutdown);
}

TEST(Backoff, SleepReturnsImmediatelyOnCancelledToken) {
  CancellationToken token;
  token.request_cancel();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(backoff_sleep(5.0, &token));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
}

TEST(Backoff, SleepWithoutTokenCompletes) {
  EXPECT_TRUE(backoff_sleep(0.01, nullptr));
  EXPECT_TRUE(backoff_sleep(0.0, nullptr));
  EXPECT_TRUE(backoff_sleep(-1.0, nullptr));
}

}  // namespace
}  // namespace ptgsched
