// Tests for the deterministic RNG and seed derivation.

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ptgsched {
namespace {

TEST(Splitmix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

TEST(Splitmix64, MixesNearbyInputs) {
  // Consecutive inputs must map to wildly different outputs.
  const std::uint64_t a = splitmix64(1);
  const std::uint64_t b = splitmix64(2);
  EXPECT_NE(a, b);
  EXPECT_GT(__builtin_popcountll(a ^ b), 10);
}

TEST(DeriveSeed, DependsOnEverySalt) {
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
  EXPECT_NE(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 4, 3));
}

TEST(DeriveSeed, IsStable) {
  EXPECT_EQ(derive_seed(7, 8, 9), derive_seed(7, 8, 9));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-3, 7);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 7);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, IndexBounds) {
  Rng rng(6);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.index(17), 17u);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, CanonicalInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.canonical();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng(10);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.2)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const auto i : sample) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(15);
  auto sample = rng.sample_indices(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(16);
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIndicesUnbiased) {
  // Each index of [0,5) should appear in a 2-of-5 sample ~40% of the time.
  Rng rng(17);
  std::vector<int> counts(5, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const auto i : rng.sample_indices(5, 2)) ++counts[i];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.4, 0.02);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(19);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), std::invalid_argument);
}

TEST(Rng, PickReturnsElements) {
  Rng rng(20);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // Child stream should not replay the parent stream.
  Rng b(21);
  (void)b.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace ptgsched
