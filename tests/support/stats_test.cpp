// Tests for statistics: Welford accumulation, incomplete beta / Student-t,
// confidence intervals, percentiles, histograms.

#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ptgsched {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1, 1, 0.3), 0.3, 1e-12);
  // I_x(2, 2) = 3x^2 - 2x^3.
  EXPECT_NEAR(incomplete_beta(2, 2, 0.4), 3 * 0.16 - 2 * 0.064, 1e-12);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(2.5, 1.5, 0.7),
              1.0 - incomplete_beta(1.5, 2.5, 0.3), 1e-12);
}

TEST(IncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2, 3, 1.0), 1.0);
  EXPECT_THROW((void)incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

TEST(StudentT, CdfSymmetry) {
  for (const double nu : {1.0, 3.0, 10.0, 100.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, nu), 0.5, 1e-12);
    EXPECT_NEAR(student_t_cdf(1.7, nu) + student_t_cdf(-1.7, nu), 1.0, 1e-12);
  }
}

TEST(StudentT, MatchesTablesAt95Percent) {
  // Classic two-sided 95% critical values.
  EXPECT_NEAR(student_t_quantile(0.975, 1), 12.706, 1e-2);
  EXPECT_NEAR(student_t_quantile(0.975, 4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 9), 2.262, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 29), 2.045, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 999), 1.962, 1e-3);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (const double nu : {2.0, 7.0, 33.0}) {
    for (const double p : {0.05, 0.25, 0.5, 0.9, 0.999}) {
      const double t = student_t_quantile(p, nu);
      EXPECT_NEAR(student_t_cdf(t, nu), p, 1e-9);
    }
  }
}

TEST(StudentT, QuantileRejectsBadInput) {
  EXPECT_THROW((void)student_t_quantile(0.0, 5), std::invalid_argument);
  EXPECT_THROW((void)student_t_quantile(1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)student_t_quantile(0.5, 0), std::invalid_argument);
}

TEST(MeanCi, KnownExample) {
  // For {1..5}: mean 3, sd sqrt(2.5), se 0.7071, t(0.975, 4) = 2.776.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto ci = mean_confidence_interval(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_EQ(ci.n, 5u);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(2.5 / 5.0), 1e-3);
  EXPECT_NEAR(ci.lo, 3.0 - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.hi, 3.0 + ci.half_width, 1e-12);
}

TEST(MeanCi, SingleSampleCollapses) {
  const std::vector<double> xs{7.0};
  const auto ci = mean_confidence_interval(xs);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(MeanCi, WiderConfidenceWiderInterval) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const auto c90 = mean_confidence_interval(xs, 0.90);
  const auto c99 = mean_confidence_interval(xs, 0.99);
  EXPECT_LT(c90.half_width, c99.half_width);
}

TEST(MeanCi, RejectsEmptyAndBadConfidence) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean_confidence_interval(empty), std::invalid_argument);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)mean_confidence_interval(xs, 1.0),
               std::invalid_argument);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_NEAR(percentile(xs, 25), 17.5, 1e-12);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101), std::invalid_argument);
}

TEST(Histogram, BinsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.5);  // bin 0
  for (int i = 0; i < 300; ++i) h.add(5.5);  // bin 5
  EXPECT_EQ(h.total(), 400u);
  EXPECT_EQ(h.bin_count(0), 100u);
  EXPECT_EQ(h.bin_count(5), 300u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.density(5), 300.0 / 400.0 / 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Wilcoxon, IdenticalSamplesGivePOne) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(xs, xs), 1.0);
}

TEST(Wilcoxon, RejectsSizeMismatch) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1};
  EXPECT_THROW((void)wilcoxon_signed_rank(xs, ys), std::invalid_argument);
}

TEST(Wilcoxon, SymmetricInArguments) {
  const std::vector<double> xs{5, 7, 3, 9, 11, 2, 8};
  const std::vector<double> ys{4, 9, 1, 7, 12, 1, 6};
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(xs, ys),
                   wilcoxon_signed_rank(ys, xs));
}

TEST(Wilcoxon, ExactSmallSampleAllPositive) {
  // n = 5, all differences positive: W+ = 15, the most extreme of 32
  // assignments together with W+ = 0 -> p = 2/32.
  const std::vector<double> xs{2, 3, 4, 5, 6};
  const std::vector<double> ys{1, 1, 1, 1, 1};
  EXPECT_NEAR(wilcoxon_signed_rank(xs, ys), 2.0 / 32.0, 1e-12);
}

TEST(Wilcoxon, DetectsSystematicShiftLargeSample) {
  // 30 pairs, consistent positive shift with noise: p must be tiny.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 30; ++i) {
    const double noise = 0.1 * std::sin(3.7 * i);
    xs.push_back(10.0 + 1.0 + noise);
    ys.push_back(10.0 + noise * 0.5);
  }
  EXPECT_LT(wilcoxon_signed_rank(xs, ys), 1e-4);
}

TEST(Wilcoxon, NoShiftLargeSampleNotSignificant) {
  // Alternating +/- differences of equal magnitude: no evidence of shift.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(5.0);
    ys.push_back(5.0 + ((i % 2 == 0) ? 1.0 : -1.0) * (1.0 + 0.01 * i));
  }
  EXPECT_GT(wilcoxon_signed_rank(xs, ys), 0.3);
}

TEST(Wilcoxon, ZeroDifferencesDropped) {
  // Three informative pairs among many zeros: matches the 3-pair result.
  const std::vector<double> xs3{2, 3, 4};
  const std::vector<double> ys3{1, 1, 1};
  std::vector<double> xs = xs3;
  std::vector<double> ys = ys3;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(7.0);
    ys.push_back(7.0);
  }
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(xs, ys),
                   wilcoxon_signed_rank(xs3, ys3));
}

TEST(MeanHelpers, MeanAndStddev) {
  const std::vector<double> xs{2, 4, 6};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(sample_stddev(xs), 2.0);
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
}

}  // namespace
}  // namespace ptgsched
