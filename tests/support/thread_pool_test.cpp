// Tests for the thread pool used to evaluate EA offspring in parallel.

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ptgsched {
namespace {

TEST(ThreadPool, InlineModeRunsAllIterations) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, EachIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(4);
  int x = 0;
  pool.parallel_for(1, [&](std::size_t) { ++x; });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPool, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 42) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, InlineExceptionPropagates) {
  ThreadPool pool(0);
  EXPECT_THROW(
      pool.parallel_for(5, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPool, ParallelSumIsCorrect) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10000;
  std::atomic<long long> sum{0};
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace ptgsched
