// Tests for the thread pool used to evaluate EA offspring in parallel.

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ptgsched {
namespace {

TEST(ThreadPool, InlineModeRunsAllIterations) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, EachIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(4);
  int x = 0;
  pool.parallel_for(1, [&](std::size_t) { ++x; });
  EXPECT_EQ(x, 1);
}

TEST(ThreadPool, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 42) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, InlineExceptionPropagates) {
  ThreadPool pool(0);
  EXPECT_THROW(
      pool.parallel_for(5, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPoolBlocked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {1u, 7u, 100u, 4097u}) {
    for (const std::size_t grain : {0u, 1u, 3u, 64u, 10000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for_blocked(n, grain, [&](std::size_t lo, std::size_t hi,
                                              std::size_t) {
        ASSERT_LE(lo, hi);
        ASSERT_LE(hi, n);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolBlocked, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_blocked(
      0, 8, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolBlocked, InlineModeUsesSlotZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_slots(), 1u);
  std::size_t covered = 0;
  pool.parallel_for_blocked(50, 7, [&](std::size_t lo, std::size_t hi,
                                       std::size_t slot) {
    EXPECT_EQ(slot, 0u);
    covered += hi - lo;
  });
  EXPECT_EQ(covered, 50u);
}

TEST(ThreadPoolBlocked, SlotsAreExclusiveWhileRunning) {
  // No two concurrent body invocations may share a slot (the evaluation
  // engine keeps one ListScheduler per slot and relies on this).
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_slots(), 5u);
  std::vector<std::atomic<int>> in_flight(pool.num_slots());
  std::atomic<bool> clash{false};
  std::atomic<long long> sink{0};
  pool.parallel_for_blocked(2000, 4, [&](std::size_t lo, std::size_t hi,
                                         std::size_t slot) {
    ASSERT_LT(slot, in_flight.size());
    if (in_flight[slot].fetch_add(1) != 0) clash.store(true);
    for (std::size_t i = lo; i < hi; ++i) {
      sink.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    }
    in_flight[slot].fetch_sub(1);
  });
  EXPECT_FALSE(clash.load());
}

TEST(ThreadPoolBlocked, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_blocked(
                   100, 8,
                   [](std::size_t lo, std::size_t, std::size_t) {
                     if (lo == 40) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for_blocked(
      30, 4,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        count.fetch_add(static_cast<int>(hi - lo));
      });
  EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPool, ThreadIdsAreStable) {
  ThreadPool pool(3);
  const auto before = pool.thread_ids();
  ASSERT_EQ(before.size(), 3u);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [](std::size_t) {});
  }
  EXPECT_EQ(pool.thread_ids(), before);
}

TEST(ThreadPool, ParallelSumIsCorrect) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10000;
  std::atomic<long long> sum{0};
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace ptgsched
