// Tests for durable atomic file replacement and the append-only journal.

#include "support/atomic_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace ptgsched {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  // One directory per test case: ctest runs each discovered case as its
  // own process, so a shared path would let one case's remove_all() race
  // another case's writes under `ctest -j`.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::temp_directory_path() /
      (name + "_" + info->test_suite_name() + "_" + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AtomicIo, RenameIsFollowedByDirectoryFsync) {
  // The rename only survives power loss once the parent directory's data
  // hits stable storage; assert the directory-fd fsync path is actually
  // exercised (a regression to "best effort, silently skipped" would pass
  // every content test while reintroducing the durability gap).
  const fs::path dir = fresh_dir("ptgsched_atomic_io");
  const fs::path target = dir / "durable.json";
  const AtomicIoStats before = atomic_io_stats();
  write_file_atomic(target.string(), "{}\n");
  const AtomicIoStats after = atomic_io_stats();
  EXPECT_GE(after.dir_fsyncs, before.dir_fsyncs + 1);
  EXPECT_GE(after.file_fsyncs, before.file_fsyncs + 1);
  fs::remove_all(dir);
}

TEST(AtomicIo, JournalCreationFsyncsTheDirectory) {
  const fs::path dir = fresh_dir("ptgsched_atomic_io");
  const fs::path path = dir / "journal.jsonl";
  const AtomicIoStats before = atomic_io_stats();
  {
    AppendJournal journal(path.string());  // creates the file
    const AtomicIoStats created = atomic_io_stats();
    EXPECT_GE(created.dir_fsyncs, before.dir_fsyncs + 1);
    journal.append_line("x");
  }
  {
    // Re-opening an existing journal must NOT pay the directory fsync
    // again — only creation changes the directory's contents.
    const AtomicIoStats reopened_before = atomic_io_stats();
    AppendJournal journal(path.string());
    const AtomicIoStats reopened_after = atomic_io_stats();
    EXPECT_EQ(reopened_after.dir_fsyncs, reopened_before.dir_fsyncs);
  }
  fs::remove_all(dir);
}

TEST(AtomicIo, WritesContentAndLeavesNoTempFile) {
  const fs::path dir = fresh_dir("ptgsched_atomic_io");
  const fs::path target = dir / "report.json";
  write_file_atomic(target.string(), "{\"ok\": true}\n");
  EXPECT_EQ(slurp(target), "{\"ok\": true}\n");
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
  fs::remove_all(dir);
}

TEST(AtomicIo, ReplacesExistingFile) {
  const fs::path dir = fresh_dir("ptgsched_atomic_io");
  const fs::path target = dir / "data.csv";
  write_file_atomic(target.string(), "old\n");
  write_file_atomic(target.string(), "new\n");
  EXPECT_EQ(slurp(target), "new\n");
  fs::remove_all(dir);
}

TEST(AtomicIo, MissingDirectoryThrowsIoErrorWithPath) {
  const std::string target = "/nonexistent/ptgsched/never/report.json";
  try {
    write_file_atomic(target, "x");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/ptgsched/never"),
              std::string::npos);
  }
}

TEST(AtomicIo, FailedReplaceLeavesOriginalUntouched) {
  const fs::path dir = fresh_dir("ptgsched_atomic_io");
  const fs::path target = dir / "keep.json";
  write_file_atomic(target.string(), "precious\n");
  // Sabotage: the tmp path is occupied by a *directory*, so the write of
  // <target>.tmp must fail — and the original must survive unmodified.
  fs::create_directories(target.string() + ".tmp");
  EXPECT_THROW(write_file_atomic(target.string(), "clobber\n"), IoError);
  EXPECT_EQ(slurp(target), "precious\n");
  fs::remove_all(dir);
}

TEST(AppendJournalTest, AppendsSurviveReopen) {
  const fs::path dir = fresh_dir("ptgsched_journal");
  const fs::path path = dir / "journal.jsonl";
  {
    AppendJournal journal(path.string(), /*truncate=*/true);
    journal.append_line("{\"a\": 1}");
    journal.append_line("{\"b\": 2}");
  }
  {
    AppendJournal journal(path.string());  // reopen, append mode
    journal.append_line("{\"c\": 3}");
  }
  EXPECT_EQ(slurp(path), "{\"a\": 1}\n{\"b\": 2}\n{\"c\": 3}\n");
  fs::remove_all(dir);
}

TEST(AppendJournalTest, TruncateDiscardsExistingContent) {
  const fs::path dir = fresh_dir("ptgsched_journal");
  const fs::path path = dir / "journal.jsonl";
  { AppendJournal(path.string(), true).append_line("stale"); }
  { AppendJournal(path.string(), true).append_line("fresh"); }
  EXPECT_EQ(slurp(path), "fresh\n");
  fs::remove_all(dir);
}

TEST(AppendJournalTest, UnwritablePathThrowsIoError) {
  EXPECT_THROW(AppendJournal("/nonexistent/ptgsched/journal.jsonl"),
               IoError);
}

}  // namespace
}  // namespace ptgsched
