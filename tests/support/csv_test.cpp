// Tests for the CSV writer/reader.

#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace ptgsched {
namespace {

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("has\nnewline"), "\"has\nnewline\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvRow, JoinsFields) {
  EXPECT_EQ(csv_row({"a", "b,c", "d"}), "a,\"b,c\",d");
  EXPECT_EQ(csv_row({}), "");
}

TEST(CsvParse, SimpleRows) {
  const auto rows = csv_parse("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvParse, NoTrailingNewline) {
  const auto rows = csv_parse("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvParse, CrLfLineEndings) {
  const auto rows = csv_parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
}

TEST(CsvParse, QuotedFields) {
  const auto rows = csv_parse("\"a,b\",\"c\"\"d\",\"e\nf\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "c\"d");
  EXPECT_EQ(rows[0][2], "e\nf");
}

TEST(CsvParse, EmptyFields) {
  const auto rows = csv_parse(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "");
}

TEST(CsvParse, EmptyDocument) { EXPECT_TRUE(csv_parse("").empty()); }

TEST(CsvParse, Errors) {
  EXPECT_THROW((void)csv_parse("\"unterminated"), CsvError);
  EXPECT_THROW((void)csv_parse("ab\"cd\n"), CsvError);
}

TEST(CsvParse, RoundTripsEscapedContent) {
  const std::vector<std::string> fields{"x", "a,b", "q\"q", "multi\nline"};
  const auto rows = csv_parse(csv_row(fields) + "\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], fields);
}

TEST(CsvWriter, SchemaEnforced) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  EXPECT_THROW(w.add_row({"1"}), CsvError);
  EXPECT_THROW(w.add_row({"1", "2", "3"}), CsvError);
  EXPECT_EQ(w.num_rows(), 1u);
  EXPECT_THROW(CsvWriter({}), CsvError);
}

TEST(CsvWriter, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "ptgsched_csv.csv").string();
  CsvWriter w({"name", "value"});
  w.add_row({"pi", "3.14"});
  w.add_row({"with,comma", "x"});
  w.write_file(path);

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto rows = csv_parse(text);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[2][0], "with,comma");
  std::filesystem::remove(path);
}

TEST(CsvWriter, UnwritablePathThrowsCsvError) {
  CsvWriter w({"a"});
  w.add_row({"1"});
  try {
    w.write_file("/nonexistent/ptgsched/out.csv");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    // The I/O failure surfaces as CsvError with the path in the message.
    EXPECT_NE(std::string(e.what()).find("/nonexistent/ptgsched/out.csv"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ptgsched
