// Tests for the cooperative cancellation token and its signal bridge.

#include "support/cancellation.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <thread>

namespace ptgsched {
namespace {

TEST(CancellationToken, StartsClearAndLatchesOnRequest) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_NO_THROW(token.throw_if_cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationToken, ThrowIfCancelledThrowsCancelledError) {
  CancellationToken token;
  token.request_cancel();
  EXPECT_THROW(token.throw_if_cancelled(), CancelledError);
}

TEST(CancellationToken, DefaultReasonIsUserCancel) {
  CancellationToken token;
  token.request_cancel();
  EXPECT_EQ(token.reason(), CancelReason::kUser);
}

TEST(CancellationToken, FirstReasonWins) {
  CancellationToken token;
  token.request_cancel(CancelReason::kDeadline);
  token.request_cancel(CancelReason::kUser);
  token.request_cancel(CancelReason::kShutdown);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancellationToken, ThrowCarriesReasonAndNamesIt) {
  CancellationToken token;
  token.request_cancel(CancelReason::kDeadline);
  try {
    token.throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(CancellationToken, ResetClearsFlagAndReason) {
  CancellationToken token;
  token.request_cancel(CancelReason::kShutdown);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancelReasonNames, StableWireNames) {
  EXPECT_STREQ(cancel_reason_name(CancelReason::kNone), "none");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kUser), "user_cancel");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kDeadline), "deadline");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kShutdown), "shutdown");
}

TEST(CancellationToken, VisibleAcrossThreads) {
  CancellationToken token;
  std::thread t([&] { token.request_cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationErrors, TaxonomyTypesAreDistinct) {
  // Both derive from std::runtime_error but must stay distinguishable for
  // the unit-failure taxonomy.
  const CancelledError c("c");
  const DeadlineError d("d");
  const std::exception& ce = c;
  const std::exception& de = d;
  EXPECT_NE(dynamic_cast<const CancelledError*>(&ce), nullptr);
  EXPECT_EQ(dynamic_cast<const CancelledError*>(&de), nullptr);
  EXPECT_NE(dynamic_cast<const DeadlineError*>(&de), nullptr);
  EXPECT_EQ(dynamic_cast<const DeadlineError*>(&ce), nullptr);
}

TEST(SignalCancellation, SigintTripsTheInstalledToken) {
  CancellationToken token;
  install_signal_cancellation(&token);
  EXPECT_FALSE(token.cancelled());
  std::raise(SIGINT);
  EXPECT_TRUE(token.cancelled());
  // Signals are process-level stops, not user per-request cancels.
  EXPECT_EQ(token.reason(), CancelReason::kShutdown);
  install_signal_cancellation(nullptr);
}

TEST(SignalCancellation, SigtermTripsTheInstalledToken) {
  CancellationToken token;
  install_signal_cancellation(&token);
  std::raise(SIGTERM);
  EXPECT_TRUE(token.cancelled());
  install_signal_cancellation(nullptr);
}

TEST(SignalCancellation, ReinstallSwitchesTokens) {
  CancellationToken first;
  CancellationToken second;
  install_signal_cancellation(&first);
  install_signal_cancellation(&second);
  std::raise(SIGINT);
  EXPECT_FALSE(first.cancelled());
  EXPECT_TRUE(second.cancelled());
  install_signal_cancellation(nullptr);
}

}  // namespace
}  // namespace ptgsched
