// Tests for the in-repo JSON reader/writer.

#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "support/atomic_io.hpp"

namespace ptgsched {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_double(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerant) {
  const Json v = Json::parse("  \n\t {\"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, NestedStructure) {
  const Json v = Json::parse(R"({"x": {"y": [1, {"z": true}]}})");
  EXPECT_TRUE(v.at("x").at("y").at(1).at("z").as_bool());
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  const Json v = Json::parse(R"("a\"b\\c\/d\n\tA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c/d\n\tA");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
  // Surrogate pair: U+1D11E (musical G clef).
  EXPECT_EQ(Json::parse(R"("𝄞")").as_string(),
            "\xf0\x9d\x84\x9e");
}

TEST(JsonParse, ErrorsCarryPosition) {
  try {
    (void)Json::parse("{\n  \"a\": ?\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)Json::parse("tru"), JsonError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)Json::parse("1.2.3"), JsonError);
  EXPECT_THROW((void)Json::parse("{1: 2}"), JsonError);
}

TEST(JsonParse, RejectsControlCharactersInStrings) {
  EXPECT_THROW((void)Json::parse("\"a\nb\""), JsonError);
}

TEST(JsonParse, RejectsLoneSurrogate) {
  EXPECT_THROW((void)Json::parse(R"("\ud834")"), JsonError);
  EXPECT_THROW((void)Json::parse(R"("\udd1e")"), JsonError);
}

TEST(JsonParse, DeepNestingGuard) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)Json::parse(deep), JsonError);
}

TEST(JsonParse, ErrorsCarryByteOffset) {
  try {
    (void)Json::parse("[1, ?]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.byte_offset(), 4u);  // the '?'
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos);
  }
  // Type-mismatch errors are not parse errors and carry no offset.
  try {
    (void)Json::parse("[1]").as_object();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.byte_offset(), JsonError::knpos);
  }
}

TEST(JsonLimitsTest, MaxDepthIsConfigurable) {
  JsonLimits limits;
  limits.max_depth = 4;
  EXPECT_NO_THROW((void)Json::parse("[[[[1]]]]", limits));
  try {
    (void)Json::parse("[[[[[1]]]]]", limits);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("max depth of 4"),
              std::string::npos);
    EXPECT_NE(e.byte_offset(), JsonError::knpos);
  }
  // Mixed containers count object and array nesting alike.
  EXPECT_THROW((void)Json::parse(R"({"a":[{"b":[{"c":1}]}]})", limits),
               JsonError);
}

TEST(JsonLimitsTest, MaxBytesRefusesOversizedDocuments) {
  JsonLimits limits;
  limits.max_bytes = 16;
  EXPECT_NO_THROW((void)Json::parse("[1,2,3]", limits));
  const std::string big = "[" + std::string(1000, '1') + "]";
  try {
    (void)Json::parse(big, limits);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("max size of 16"),
              std::string::npos);
    EXPECT_EQ(e.byte_offset(), 16u);
  }
}

TEST(JsonLimitsTest, HostileInputCorpusNeverCrashes) {
  // Network-origin nastiness: every input must raise JsonError (or parse
  // cleanly), never overflow the stack or allocate without bound.
  JsonLimits limits;
  limits.max_depth = 64;
  limits.max_bytes = 4096;
  const std::string deep_arrays(5000, '[');
  std::string deep_objects;
  for (int i = 0; i < 2000; ++i) deep_objects += "{\"k\":";
  std::string alternating;
  for (int i = 0; i < 1500; ++i) alternating += "[{\"x\":";
  const std::string huge = "\"" + std::string(100000, 'a') + "\"";
  const std::string corpus[] = {
      deep_arrays, deep_objects, alternating, huge,
      std::string(100, '['),                // deep but small: depth trips
      std::string(4096, ' '),               // all whitespace, no value
      "[" + std::string(4000, '9') + "]",   // giant number token
      "{\"a\":1",                            // truncated frame
      std::string("\x00\x01\x02", 3),       // binary garbage
  };
  for (const std::string& text : corpus) {
    EXPECT_THROW((void)Json::parse(text, limits), JsonError)
        << "input of " << text.size() << " bytes";
  }
  // The defaults still parse ordinarily-nested real documents.
  EXPECT_NO_THROW(
      (void)Json::parse(R"({"op":"submit","job":{"tasks":30}})", limits));
}

TEST(JsonDump, RoundTripsStructures) {
  const std::string text =
      R"({"arr":[1,2.5,"x",null,true],"num":-3,"obj":{"k":"v"}})";
  const Json v = Json::parse(text);
  EXPECT_EQ(Json::parse(v.dump()), v);
  EXPECT_EQ(Json::parse(v.dump(2)), v);  // pretty print round-trips too
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(JsonDump, EscapesSpecialCharacters) {
  EXPECT_EQ(Json("a\"b\n").dump(), R"("a\"b\n")");
}

TEST(JsonDump, RejectsNonFinite) {
  EXPECT_THROW((void)Json(std::nan("")).dump(), JsonError);
}

TEST(JsonAccess, TypeErrorsAreDescriptive) {
  const Json v = Json::parse("[1]");
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.at("k"), JsonError);
  EXPECT_THROW((void)v.at(5), JsonError);
  EXPECT_THROW((void)Json(1.5).as_int(), JsonError);
}

TEST(JsonAccess, GetOrDefaults) {
  const Json v = Json::parse(R"({"a": 1, "s": "x", "b": true})");
  EXPECT_EQ(v.get_or("a", std::int64_t{9}), 1);
  EXPECT_EQ(v.get_or("missing", std::int64_t{9}), 9);
  EXPECT_EQ(v.get_or("s", std::string("d")), "x");
  EXPECT_EQ(v.get_or("missing", std::string("d")), "d");
  EXPECT_TRUE(v.get_or("b", false));
  EXPECT_TRUE(v.get_or("missing", true));
  EXPECT_DOUBLE_EQ(v.get_or("missing", 1.5), 1.5);
}

TEST(JsonAccess, ContainsWorksOnNonObjects) {
  EXPECT_FALSE(Json(3).contains("x"));
  EXPECT_FALSE(Json::parse("[]").contains("x"));
}

TEST(JsonBuild, SetAndPushBack) {
  Json obj = Json::object();
  obj.set("k", Json(1)).set("l", Json("two"));
  Json arr = Json::array();
  arr.push_back(Json(true)).push_back(obj);
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.at(1).at("l").as_string(), "two");
}

TEST(JsonFile, WriteAndReadBack) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_json_test.json";
  Json doc = Json::object();
  doc.set("name", Json("test")).set("values", Json::parse("[1,2,3]"));
  doc.write_file(path.string());
  const Json loaded = Json::parse_file(path.string());
  EXPECT_EQ(loaded, doc);
  std::filesystem::remove(path);
}

TEST(JsonFile, MissingFileThrows) {
  EXPECT_THROW((void)Json::parse_file("/nonexistent/nope.json"),
               std::runtime_error);
}

TEST(JsonFile, UnwritablePathThrowsIoError) {
  EXPECT_THROW(Json::object().write_file("/nonexistent/ptgsched/out.json"),
               IoError);
}

TEST(JsonFile, WriteLeavesNoTempFileBehind) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_json_atomic.json";
  Json::parse("[1,2,3]").write_file(path.string());
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove(path);
}

TEST(JsonRequire, NamesTheMissingKeyAndContext) {
  const Json doc = Json::parse(R"({"present": 1})");
  EXPECT_EQ(json_require(doc, "present", "test doc").as_int(), 1);
  try {
    (void)json_require(doc, "absent", "test doc");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test doc"), std::string::npos);
  }
  EXPECT_THROW((void)json_require(Json::parse("[]"), "k", "array doc"),
               JsonError);
}

TEST(JsonEquality, DeepComparison) {
  EXPECT_EQ(Json::parse(R"({"a":[1,2]})"), Json::parse(R"({ "a" : [1, 2] })"));
  EXPECT_FALSE(Json::parse("[1,2]") == Json::parse("[2,1]"));
}

}  // namespace
}  // namespace ptgsched
