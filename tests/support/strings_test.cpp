// Tests for string utilities and the table renderer.

#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace ptgsched {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strfmt, LongOutput) {
  const std::string long_arg(1000, 'a');
  EXPECT_EQ(strfmt("%s", long_arg.c_str()).size(), 1000u);
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(RenderTable, AlignsColumnsWithHeaderRule) {
  const std::string out = render_table({{"name", "value"}, {"x", "12345"}});
  // Header, separator, one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("name  value"), std::string::npos);
  EXPECT_NE(out.find("----  -----"), std::string::npos);
}

TEST(RenderTable, EmptyInput) { EXPECT_EQ(render_table({}), ""); }

TEST(RenderTable, RaggedRows) {
  const std::string out =
      render_table({{"a", "b", "c"}, {"1"}, {"1", "2", "3"}});
  EXPECT_NE(out.find("a  b  c"), std::string::npos);
}

}  // namespace
}  // namespace ptgsched
