// Tests for the CLI argument parser used by examples and benches.

#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ptgsched {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("seed", "rng seed", "42");
  cli.add_option("name", "a string", "default");
  cli.add_option("rate", "a double", "0.5");
  cli.add_flag("full", "run full scale");
  return cli;
}

bool parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("seed"), 42);
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.5);
  EXPECT_FALSE(cli.get_flag("full"));
}

TEST(Cli, EqualsSyntax) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--seed=7", "--name=abc", "--rate=1.25"}));
  EXPECT_EQ(cli.get_int("seed"), 7);
  EXPECT_EQ(cli.get("name"), "abc");
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.25);
}

TEST(Cli, SpaceSyntax) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--seed", "9", "--name", "xyz"}));
  EXPECT_EQ(cli.get_int("seed"), 9);
  EXPECT_EQ(cli.get("name"), "xyz");
}

TEST(Cli, Flags) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--full"}));
  EXPECT_TRUE(cli.get_flag("full"));
}

TEST(Cli, FlagWithExplicitValue) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--full=false"}));
  EXPECT_FALSE(cli.get_flag("full"));
  CliParser cli2 = make_parser();
  ASSERT_TRUE(parse(cli2, {"--full=1"}));
  EXPECT_TRUE(cli2.get_flag("full"));
}

TEST(Cli, UnknownOptionRejected) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"--nope=1"}), CliError);
}

TEST(Cli, MissingValueRejected) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"--seed"}), CliError);
}

TEST(Cli, NonNumericValueRejected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--seed=abc"}));
  EXPECT_THROW((void)cli.get_int("seed"), CliError);
  EXPECT_THROW((void)cli.get_u64("seed"), CliError);
}

TEST(Cli, PartiallyNumericValueRejected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--rate=1.5x"}));
  EXPECT_THROW((void)cli.get_double("rate"), CliError);
}

TEST(Cli, Positionals) {
  CliParser cli("prog", "d");
  cli.add_positional("input", "input file");
  cli.add_option("seed", "s", "1");
  std::vector<const char*> args{"prog", "file.json", "--seed=3"};
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.positional("input"), "file.json");
  EXPECT_EQ(cli.get_int("seed"), 3);
}

TEST(Cli, MissingPositionalRejected) {
  CliParser cli("prog", "d");
  cli.add_positional("input", "input file");
  std::vector<const char*> args{"prog"};
  EXPECT_THROW(
      (void)cli.parse(static_cast<int>(args.size()), args.data()), CliError);
}

TEST(Cli, UnexpectedPositionalRejected) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"stray"}), CliError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli = make_parser();
  ASSERT_FALSE(parse(cli, {"--help"}));
}

TEST(Cli, HelpTextMentionsOptions) {
  CliParser cli = make_parser();
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--seed"), std::string::npos);
  EXPECT_NE(help.find("--full"), std::string::npos);
  EXPECT_NE(help.find("test program"), std::string::npos);
}

TEST(Cli, DuplicateOptionRejected) {
  CliParser cli("prog", "d");
  cli.add_option("x", "h", "1");
  EXPECT_THROW(cli.add_option("x", "h", "2"), CliError);
  EXPECT_THROW(cli.add_flag("x", "h"), CliError);
}

}  // namespace
}  // namespace ptgsched
