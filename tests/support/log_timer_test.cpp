// Tests for the logging and timing utilities.

#include <gtest/gtest.h>

#include <thread>

#include "support/log.hpp"
#include "support/timer.hpp"

namespace ptgsched {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(original);
}

TEST(Log, MacroSkipsDisabledLevels) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  const auto side_effect = [&] {
    ++evaluations;
    return "x";
  };
  // The stream expression must not even be evaluated below the level.
  PTG_LOG_DEBUG << side_effect();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::Debug);
  PTG_LOG_DEBUG << side_effect();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, MessageEmissionDoesNotThrow) {
  EXPECT_NO_THROW(log_message(LogLevel::Error, "test error message"));
  EXPECT_NO_THROW(log_message(LogLevel::Info, ""));
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.milliseconds(), timer.seconds() * 1e3,
              timer.seconds() * 50.0);
}

TEST(WallTimer, ResetRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

TEST(WallTimer, MonotonicNonDecreasing) {
  WallTimer timer;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double s = timer.seconds();
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace ptgsched
