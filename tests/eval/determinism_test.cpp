// End-to-end determinism of EMTS over the evaluation engine: the same
// seed must produce a bit-identical convergence history and best schedule
// regardless of thread count, with and without the memo cache, with and
// without the rejection strategy. This is the contract that makes the
// multi-threaded engine safe to use for reproducible experiments.

#include <gtest/gtest.h>

#include "daggen/corpus.hpp"
#include "emts/emts.hpp"

namespace ptgsched {
namespace {

void expect_identical(const EmtsResult& a, const EmtsResult& b,
                      const std::string& label) {
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.best_allocation, b.best_allocation) << label;
  ASSERT_EQ(a.es.history.size(), b.es.history.size()) << label;
  for (std::size_t i = 0; i < a.es.history.size(); ++i) {
    const GenerationStats& ga = a.es.history[i];
    const GenerationStats& gb = b.es.history[i];
    EXPECT_EQ(ga.generation, gb.generation) << label << " gen " << i;
    EXPECT_DOUBLE_EQ(ga.best, gb.best) << label << " gen " << i;
    EXPECT_DOUBLE_EQ(ga.mean, gb.mean) << label << " gen " << i;
    EXPECT_DOUBLE_EQ(ga.worst, gb.worst) << label << " gen " << i;
    EXPECT_EQ(ga.evaluations, gb.evaluations) << label << " gen " << i;
  }
  EXPECT_EQ(a.es.evaluations, b.es.evaluations) << label;
  ASSERT_EQ(a.seeds.size(), b.seeds.size()) << label;
  for (std::size_t i = 0; i < a.seeds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.seeds[i].makespan, b.seeds[i].makespan) << label;
  }
}

TEST(EvalDeterminism, ThreadCountNeverChangesTheResult) {
  const Ptg g = irregular_corpus(60, 1, 77).front();
  const Cluster c = grelon();
  const SyntheticModel model;

  for (const bool memoize : {false, true}) {
    for (const bool rejection : {false, true}) {
      EmtsConfig cfg = emts5_config();
      cfg.seed = 21;
      cfg.memoize = memoize;
      cfg.use_rejection = rejection;

      cfg.threads = 1;
      const EmtsResult serial = Emts(cfg).schedule(g, model, c);
      cfg.threads = 8;
      const EmtsResult parallel = Emts(cfg).schedule(g, model, c);

      const std::string label = std::string("memoize=") +
                                (memoize ? "on" : "off") + " rejection=" +
                                (rejection ? "on" : "off");
      expect_identical(serial, parallel, label);
    }
  }
}

TEST(EvalDeterminism, MemoCacheNeverChangesTheTrajectory) {
  // The cache returns exact values only, so the convergence history and
  // final schedule are identical with and without it (rejection counters
  // may legitimately differ: a cache hit preempts a bounded evaluation).
  const Ptg g = irregular_corpus(50, 1, 78).front();
  const Cluster c = chti();
  const SyntheticModel model;

  for (const bool rejection : {false, true}) {
    EmtsConfig cfg = emts5_config();
    cfg.seed = 33;
    cfg.use_rejection = rejection;
    cfg.memoize = false;
    const EmtsResult plain = Emts(cfg).schedule(g, model, c);
    cfg.memoize = true;
    const EmtsResult memo = Emts(cfg).schedule(g, model, c);
    expect_identical(plain, memo,
                     std::string("rejection=") + (rejection ? "on" : "off"));
    // The optimizer revisits parents and duplicate mutants, so the cache
    // must actually fire for this test to mean anything.
    EXPECT_GT(memo.eval_stats.cache_hits, 0u);
    EXPECT_LT(memo.eval_stats.scheduled, plain.eval_stats.scheduled);
  }
}

TEST(EvalDeterminism, RerunIsBitIdentical) {
  const Ptg g = irregular_corpus(40, 1, 79).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EmtsConfig cfg = emts5_config();
  cfg.seed = 55;
  cfg.threads = 4;
  cfg.use_rejection = true;
  const EmtsResult a = Emts(cfg).schedule(g, model, c);
  const EmtsResult b = Emts(cfg).schedule(g, model, c);
  expect_identical(a, b, "rerun");
  EXPECT_EQ(a.eval_stats.rejections, b.eval_stats.rejections);
}

}  // namespace
}  // namespace ptgsched
