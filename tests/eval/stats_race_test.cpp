// Regression test for the reset_stats()/evaluate_batch data race: the
// telemetry counters used to be plain size_t, so a driver thread calling
// stats() or reset_stats() while worker slots were still bumping their
// counters mid-batch was a data race (caught by TSan via the `sanitize`
// label). The counters are now relaxed atomics; this test hammers the
// snapshot/reset path concurrently with batch evaluation and then checks
// the quiescent accounting is exact.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "daggen/corpus.hpp"
#include "eval/evaluation_engine.hpp"
#include "model/execution_time.hpp"
#include "platform/cluster.hpp"
#include "support/rng.hpp"

namespace ptgsched {
namespace {

std::vector<Individual> random_batch(const Ptg& g, const Cluster& c,
                                     std::size_t n, Rng& rng) {
  std::vector<Individual> batch(n);
  for (auto& ind : batch) {
    ind.genes.resize(g.num_tasks());
    for (auto& s : ind.genes) {
      s = static_cast<int>(rng.uniform_int(1, c.num_processors()));
    }
  }
  return batch;
}

TEST(EvaluationEngineRace, ResetStatsDuringConcurrentBatches) {
  const Ptg g = irregular_corpus(40, 1, 77).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.threads = 4;
  cfg.memoize = true;
  EvaluationEngine engine(g, model, c, {}, cfg);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Mid-batch snapshots and resets: values are approximate, but every
    // access must be race-free.
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine.stats().evaluations;
      engine.reset_stats();
    }
  });

  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    auto batch = random_batch(g, c, 64, rng);
    engine.evaluate_batch(batch, 0);
    for (const auto& ind : batch) EXPECT_GT(ind.fitness, 0.0);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent accounting stays exact after all that churn.
  engine.reset_stats();
  const EvalStats zero = engine.stats();
  EXPECT_EQ(zero.evaluations, 0u);
  EXPECT_EQ(zero.scheduled, 0u);
  EXPECT_EQ(zero.cache_hits, 0u);
  EXPECT_EQ(zero.cache_misses, 0u);
  EXPECT_EQ(zero.batches, 0u);
  EXPECT_EQ(zero.eval_seconds, 0.0);

  auto batch = random_batch(g, c, 32, rng);
  engine.evaluate_batch(batch, 0);
  const EvalStats after = engine.stats();
  EXPECT_EQ(after.evaluations, 32u);
  EXPECT_EQ(after.batches, 1u);
}

TEST(EvaluationEngineRace, ResultsUnaffectedByConcurrentResets) {
  // Fitness values are a pure function of the allocation — concurrent
  // telemetry resets must never perturb them.
  const Ptg g = irregular_corpus(30, 1, 78).front();
  const Cluster c = chti();
  const SyntheticModel model;

  Rng rng(9);
  auto batch = random_batch(g, c, 48, rng);
  auto expected = batch;
  {
    EvaluationEngine serial(g, model, c, {}, {});
    serial.evaluate_batch(expected, 0);
  }

  EvalEngineConfig cfg;
  cfg.threads = 4;
  EvaluationEngine engine(g, model, c, {}, cfg);
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) engine.reset_stats();
  });
  engine.evaluate_batch(batch, 0);
  stop.store(true, std::memory_order_relaxed);
  resetter.join();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i].fitness, expected[i].fitness);
  }
}

}  // namespace
}  // namespace ptgsched
