// PTGSCHED_KERNEL environment resolution: the variable selects the
// evaluation kernel when the config leaves it unset, an explicit config
// always wins, invalid values throw, and an env-selected batched run is
// bit-identical (and deterministic) against an explicit Full run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "eval/evaluation_engine.hpp"
#include "model/execution_time.hpp"
#include "platform/cluster.hpp"

namespace ptgsched {
namespace {

/// Sets (or clears, for nullptr) an environment variable for the test's
/// scope and restores the previous state on destruction, so env-driven
/// tests cannot leak configuration into the rest of the binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

EmtsConfig smoke_config() {
  EmtsConfig cfg = emts5_config();
  cfg.seed = 77;
  cfg.threads = 0;
  cfg.memoize = false;  // force every child through the mapping kernel
  return cfg;
}

TEST(KernelEnv, BatchedFromEnvironmentMatchesExplicitFull) {
  const Ptg g = irregular_corpus(40, 1, 71).front();
  const Cluster c = chti();
  const SyntheticModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);

  EmtsConfig cfg = smoke_config();
  cfg.kernel = KernelMode::Full;
  const EmtsResult full = Emts(cfg).schedule(pi);

  ScopedEnv env("PTGSCHED_KERNEL", "batched");
  cfg.kernel.reset();
  const EmtsResult a = Emts(cfg).schedule(pi);
  const EmtsResult b = Emts(cfg).schedule(pi);

  // The env-selected batched kernel reproduces the Full trajectory bit
  // for bit, and back-to-back runs are deterministic.
  EXPECT_EQ(full.makespan, a.makespan);
  EXPECT_EQ(full.best_allocation, a.best_allocation);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.best_allocation, b.best_allocation);
  // Proof the env value actually took effect: only KernelMode::Batched
  // forms sibling-lockstep sessions.
  EXPECT_GT(a.eval_stats.sibling_batches, 0u);
  EXPECT_GT(a.eval_stats.trace_builds, 0u);
}

TEST(KernelEnv, ExplicitConfigBeatsEnvironment) {
  const Ptg g = irregular_corpus(30, 1, 72).front();
  const Cluster c = chti();
  const SyntheticModel model;
  const auto pi = ProblemInstance::borrow(g, model, c);

  ScopedEnv env("PTGSCHED_KERNEL", "batched");
  EmtsConfig cfg = smoke_config();
  cfg.kernel = KernelMode::Full;
  const EmtsResult full = Emts(cfg).schedule(pi);
  // Full mode builds no traces and opens no sessions, env notwithstanding.
  EXPECT_EQ(full.eval_stats.trace_builds, 0u);
  EXPECT_EQ(full.eval_stats.delta_scheduled, 0u);
  EXPECT_EQ(full.eval_stats.sibling_batches, 0u);
}

TEST(KernelEnv, InvalidValueThrows) {
  const Ptg g = irregular_corpus(20, 1, 73).front();
  const Cluster c = chti();
  const SyntheticModel model;
  ScopedEnv env("PTGSCHED_KERNEL", "turbo");
  EXPECT_THROW(EvaluationEngine(g, model, c), std::invalid_argument);
  // An explicit config still constructs fine under the bad env value.
  EvalEngineConfig cfg;
  cfg.kernel = KernelMode::Incremental;
  EXPECT_NO_THROW(EvaluationEngine(g, model, c, {}, cfg));
}

TEST(KernelEnv, EmptyValueFallsBackToDefault) {
  const Ptg g = irregular_corpus(20, 1, 74).front();
  const Cluster c = chti();
  const SyntheticModel model;
  ScopedEnv env("PTGSCHED_KERNEL", "");
  EXPECT_NO_THROW(EvaluationEngine(g, model, c));
}

}  // namespace
}  // namespace ptgsched
