// Tests for the EvaluationEngine: memo-cache correctness (including the
// rejection interplay — a bounded/infinite result must never be cached),
// incumbent plumbing, telemetry, and parallel/serial agreement.

#include "eval/evaluation_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "daggen/corpus.hpp"
#include "model/execution_time.hpp"
#include "platform/cluster.hpp"
#include "support/rng.hpp"

namespace ptgsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Allocation random_allocation(const Ptg& g, const Cluster& c, Rng& rng) {
  Allocation alloc(g.num_tasks());
  for (auto& s : alloc) {
    s = static_cast<int>(rng.uniform_int(1, c.num_processors()));
  }
  return alloc;
}

std::vector<Individual> random_batch(const Ptg& g, const Cluster& c,
                                     std::size_t n, Rng& rng) {
  std::vector<Individual> batch(n);
  for (auto& ind : batch) ind.genes = random_allocation(g, c, rng);
  return batch;
}

TEST(EvaluationEngine, MemoizedMakespanEqualsFreshScheduler) {
  const auto graphs = irregular_corpus(40, 3, 101);
  const Cluster c = chti();
  const SyntheticModel model;
  for (const auto& g : graphs) {
    EvalEngineConfig cfg;
    cfg.memoize = true;
    EvaluationEngine engine(g, model, c, {}, cfg);
    ListScheduler fresh(g, c, model);
    Rng rng(g.num_tasks());
    auto batch = random_batch(g, c, 40, rng);
    engine.evaluate_batch(batch, 0);
    for (const auto& ind : batch) {
      EXPECT_DOUBLE_EQ(ind.fitness, fresh.makespan(ind.genes));
    }
    // Second pass: every value must come back unchanged, now from cache.
    auto again = batch;
    for (auto& ind : again) ind.fitness = -1.0;
    engine.evaluate_batch(again, 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(again[i].fitness, batch[i].fitness);
    }
    EXPECT_GE(engine.stats().cache_hits, batch.size());
  }
}

TEST(EvaluationEngine, RejectedResultsAreNeverCached) {
  Rng seed_rng(7);
  const Ptg g = irregular_corpus(30, 1, 55).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.memoize = true;
  cfg.use_rejection = true;
  EvaluationEngine engine(g, model, c, {}, cfg);

  Rng rng(3);
  auto batch = random_batch(g, c, 20, rng);

  // A bound of 0 rejects every evaluation at the first scheduled task.
  engine.set_incumbent(0.0);
  engine.evaluate_batch(batch, 0);
  for (const auto& ind : batch) EXPECT_TRUE(std::isinf(ind.fitness));
  EXPECT_EQ(engine.stats().rejections, batch.size());
  EXPECT_EQ(engine.stats().cache_hits, 0u);

  // Relaxing the bound must yield the exact makespan for the very same
  // allocations: had the +inf results been cached, these would be inf too.
  engine.set_incumbent(kInf);
  engine.evaluate_batch(batch, 0);
  ListScheduler fresh(g, c, model);
  for (const auto& ind : batch) {
    EXPECT_TRUE(std::isfinite(ind.fitness));
    EXPECT_DOUBLE_EQ(ind.fitness, fresh.makespan(ind.genes));
  }
  // No new rejections, and the second pass found no poisoned entries.
  EXPECT_EQ(engine.stats().rejections, batch.size());
}

TEST(EvaluationEngine, CacheHitBeatsTightenedBound) {
  // Once an exact makespan is cached, a later duplicate is served from the
  // cache even if the bound has tightened below it — the exact value is
  // strictly more informative than +inf and cannot change plus-selection.
  const Ptg g = irregular_corpus(30, 1, 56).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.memoize = true;
  cfg.use_rejection = true;
  EvaluationEngine engine(g, model, c, {}, cfg);

  Rng rng(4);
  const Allocation alloc = random_allocation(g, c, rng);
  const double exact = engine.evaluate_one(alloc);
  ASSERT_TRUE(std::isfinite(exact));

  engine.set_incumbent(exact / 2.0);
  std::vector<Individual> batch(1);
  batch[0].genes = alloc;
  engine.evaluate_batch(batch, 0);
  EXPECT_DOUBLE_EQ(batch[0].fitness, exact);
  EXPECT_EQ(engine.stats().rejections, 0u);
}

TEST(EvaluationEngine, OnSelectionPublishesWorstSurvivorAsBound) {
  const Ptg g = irregular_corpus(25, 1, 57).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.use_rejection = true;
  EvaluationEngine engine(g, model, c, {}, cfg);
  EXPECT_TRUE(std::isinf(engine.incumbent()));
  engine.on_selection(0, 10.0, 42.5);
  EXPECT_DOUBLE_EQ(engine.incumbent(), 42.5);

  // Without rejection the bound stays infinite (evaluations stay exact).
  EvalEngineConfig plain;
  EvaluationEngine engine2(g, model, c, {}, plain);
  engine2.on_selection(0, 10.0, 42.5);
  EXPECT_TRUE(std::isinf(engine2.incumbent()));
}

TEST(EvaluationEngine, EvaluateOneIgnoresIncumbent) {
  const Ptg g = irregular_corpus(25, 1, 58).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.use_rejection = true;
  EvaluationEngine engine(g, model, c, {}, cfg);
  engine.set_incumbent(0.0);
  Rng rng(5);
  const Allocation alloc = random_allocation(g, c, rng);
  const double m = engine.evaluate_one(alloc);
  EXPECT_TRUE(std::isfinite(m));
  ListScheduler fresh(g, c, model);
  EXPECT_DOUBLE_EQ(m, fresh.makespan(alloc));
}

TEST(EvaluationEngine, ParallelMatchesSerialValues) {
  const Ptg g = irregular_corpus(50, 1, 59).front();
  const Cluster c = grelon();
  const SyntheticModel model;
  Rng rng(6);
  const auto batch = random_batch(g, c, 100, rng);

  for (const bool memoize : {false, true}) {
    EvalEngineConfig serial_cfg;
    serial_cfg.memoize = memoize;
    EvaluationEngine serial(g, model, c, {}, serial_cfg);
    auto a = batch;
    serial.evaluate_batch(a, 0);

    EvalEngineConfig par_cfg = serial_cfg;
    par_cfg.threads = 8;
    EvaluationEngine parallel(g, model, c, {}, par_cfg);
    EXPECT_EQ(parallel.num_slots(), 8u);
    EXPECT_EQ(parallel.pool().num_threads(), 7u);
    auto b = batch;
    parallel.evaluate_batch(b, 0);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].fitness, b[i].fitness) << "memoize=" << memoize;
    }
  }
}

TEST(EvaluationEngine, StatsAreConsistent) {
  const Ptg g = irregular_corpus(30, 1, 60).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.memoize = true;
  EvaluationEngine engine(g, model, c, {}, cfg);

  Rng rng(8);
  auto batch = random_batch(g, c, 25, rng);
  // Duplicate a few genomes so hits occur inside one batch too.
  batch[5].genes = batch[0].genes;
  batch[6].genes = batch[0].genes;
  engine.evaluate_batch(batch, 0);
  engine.evaluate_batch(batch, 20);  // partial re-evaluation

  const EvalStats s = engine.stats();
  EXPECT_EQ(s.evaluations, 30u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.evaluations, s.cache_hits + s.cache_misses);
  EXPECT_EQ(s.scheduled, s.cache_misses);
  EXPECT_GE(s.cache_hits, 7u);  // 2 in-batch dups + 5 re-evaluated
  EXPECT_GE(s.eval_seconds, 0.0);
  EXPECT_GT(s.throughput(), 0.0);

  engine.reset_stats();
  const EvalStats zero = engine.stats();
  EXPECT_EQ(zero.evaluations, 0u);
  EXPECT_EQ(zero.scheduled, 0u);
  EXPECT_EQ(zero.rejections, 0u);
  EXPECT_EQ(zero.batches, 0u);
  EXPECT_DOUBLE_EQ(zero.eval_seconds, 0.0);

  // The cache survives a stats reset.
  auto again = batch;
  engine.evaluate_batch(again, 0);
  EXPECT_EQ(engine.stats().scheduled, 0u);
  engine.clear_cache();
  auto third = batch;
  engine.evaluate_batch(third, 0);
  EXPECT_GT(engine.stats().scheduled, 0u);
}

TEST(EvaluationEngine, FitnessFnMatchesEvaluateOneAndCountsWork) {
  const Ptg g = irregular_corpus(25, 1, 63).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvaluationEngine engine(g, model, c);
  const FitnessFn fitness = engine.fitness_fn();

  Rng rng(14);
  for (int trial = 0; trial < 5; ++trial) {
    const Allocation alloc = random_allocation(g, c, rng);
    // Any slot index is accepted (local search passes a thread id, which
    // the engine folds onto its own slots) and yields the exact makespan.
    EXPECT_DOUBLE_EQ(fitness(alloc, static_cast<std::size_t>(trial) * 31),
                     engine.evaluate_one(alloc));
  }
  EXPECT_EQ(engine.stats().evaluations, 10u);
}

TEST(EvaluationEngine, RejectionCountIsAnExactDeltaAfterReset) {
  const Ptg g = irregular_corpus(30, 1, 62).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.use_rejection = true;
  EvaluationEngine engine(g, model, c, {}, cfg);

  Rng rng(12);
  auto batch = random_batch(g, c, 10, rng);
  engine.set_incumbent(0.0);  // every evaluation rejects immediately
  engine.evaluate_batch(batch, 0);
  ASSERT_EQ(engine.stats().rejections, batch.size());

  // After a reset the next window counts from zero: the schedulers' own
  // counters are cleared, not merely offset against a lifetime total.
  engine.reset_stats();
  EXPECT_EQ(engine.stats().rejections, 0u);

  auto second = random_batch(g, c, 4, rng);
  engine.evaluate_batch(second, 0);
  EXPECT_EQ(engine.stats().rejections, second.size());
  EXPECT_EQ(engine.stats().evaluations, second.size());

  // An accepted window after relaxing the bound adds no rejections.
  engine.reset_stats();
  engine.set_incumbent(kInf);
  auto third = random_batch(g, c, 4, rng);
  engine.evaluate_batch(third, 0);
  EXPECT_EQ(engine.stats().rejections, 0u);
  EXPECT_EQ(engine.stats().scheduled, third.size());
}

TEST(EvaluationEngine, ColdCacheSamplerSkipsProbesAndStaysExact) {
  // A long stream of distinct allocations never hits the memo cache; the
  // cold-cache sampler must detect that within its first probe window and
  // start skipping most lookups (the BENCH_6 memo-lane fix) — without
  // ever changing a returned value.
  const Ptg g = irregular_corpus(30, 1, 64).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvalEngineConfig cfg;
  cfg.memoize = true;
  EvaluationEngine engine(g, model, c, {}, cfg);
  ListScheduler fresh(g, c, model);

  Rng rng(21);
  auto batch = random_batch(g, c, 300, rng);
  engine.evaluate_batch(batch, 0);
  for (const auto& ind : batch) {
    EXPECT_DOUBLE_EQ(ind.fitness, fresh.makespan(ind.genes));
  }
  EvalStats s = engine.stats();
  // All-distinct genomes: the first full probe window misses, the slot
  // goes cold, and most of the remaining lookups are skipped.
  EXPECT_GT(s.cache_skipped, 0u);
  EXPECT_EQ(s.evaluations, s.cache_hits + s.cache_misses + s.cache_skipped);

  // Re-evaluating the same genomes stays exact: entries the sampler
  // skipped on insert are simply recomputed, never served stale.
  auto again = batch;
  for (auto& ind : again) ind.fitness = -1.0;
  engine.evaluate_batch(again, 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].fitness, batch[i].fitness);
  }
  s = engine.stats();
  EXPECT_EQ(s.evaluations, s.cache_hits + s.cache_misses + s.cache_skipped);

  // A warm access pattern (few distinct genomes, many repeats) must keep
  // probing normally: no skips before the window can even fill.
  EvaluationEngine warm(g, model, c, {}, cfg);
  auto dup = random_batch(g, c, 4, rng);
  for (int round = 0; round < 8; ++round) {
    auto w = dup;
    warm.evaluate_batch(w, 0);
  }
  EXPECT_EQ(warm.stats().cache_skipped, 0u);
  EXPECT_GE(warm.stats().cache_hits, 28u);
}

TEST(EvaluationEngine, BuildScheduleMatchesFitness) {
  const Ptg g = irregular_corpus(25, 1, 61).front();
  const Cluster c = chti();
  const SyntheticModel model;
  EvaluationEngine engine(g, model, c);
  Rng rng(9);
  const Allocation alloc = random_allocation(g, c, rng);
  const double m = engine.evaluate_one(alloc);
  EXPECT_DOUBLE_EQ(engine.build_schedule(alloc).makespan(), m);
}

}  // namespace
}  // namespace ptgsched
