// Tests for graph algorithms: topological order, levels, bottom/top
// levels, critical path.

#include "ptg/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../common/test_graphs.hpp"
#include "daggen/corpus.hpp"

namespace ptgsched {
namespace {

TaskTimeFn unit_time() {
  return [](TaskId) { return 1.0; };
}

TaskTimeFn flops_time(const Ptg& g) {
  return [&g](TaskId v) { return g.task(v).flops; };
}

TEST(TopologicalOrder, RespectsEdges) {
  const Ptg g = testutil::diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const TaskId w : g.successors(v)) EXPECT_LT(pos[v], pos[w]);
  }
}

TEST(TopologicalOrder, DeterministicTieBreak) {
  // Diamond: 0 then {1, 2} in id order, then 3.
  const auto order = topological_order(testutil::diamond());
  EXPECT_EQ(order, (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(TopologicalOrder, ThrowsOnCycle) {
  Ptg g;
  g.add_task(testutil::simple_task("a", 1));
  g.add_task(testutil::simple_task("b", 1));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)topological_order(g), GraphError);
  EXPECT_FALSE(is_acyclic(g));
}

TEST(TopologicalOrder, EmptyGraph) {
  const Ptg g;
  EXPECT_TRUE(topological_order(g).empty());
  EXPECT_TRUE(is_acyclic(g));
}

TEST(PrecedenceLevels, DiamondLevels) {
  const auto levels = precedence_levels(testutil::diamond());
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 1, 2}));
  EXPECT_EQ(num_precedence_levels(testutil::diamond()), 3);
}

TEST(PrecedenceLevels, LongestPathSemantics) {
  // a -> b -> d, a -> d: d sits at level 2, not 1.
  Ptg g;
  const TaskId a = g.add_task(testutil::simple_task("a", 1));
  const TaskId b = g.add_task(testutil::simple_task("b", 1));
  const TaskId d = g.add_task(testutil::simple_task("d", 1));
  g.add_edge(a, b);
  g.add_edge(b, d);
  g.add_edge(a, d);
  EXPECT_EQ(precedence_levels(g), (std::vector<int>{0, 1, 2}));
}

TEST(TasksByLevel, GroupsCorrectly) {
  const auto by_level = tasks_by_level(testutil::diamond());
  ASSERT_EQ(by_level.size(), 3u);
  EXPECT_EQ(by_level[0], (std::vector<TaskId>{0}));
  EXPECT_EQ(by_level[1], (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(by_level[2], (std::vector<TaskId>{3}));
}

TEST(BottomLevels, IncludesOwnTime) {
  const Ptg g = testutil::chain3();  // times 1, 2, 3
  const auto bl = bottom_levels(g, flops_time(g));
  EXPECT_DOUBLE_EQ(bl[2], 3.0);
  EXPECT_DOUBLE_EQ(bl[1], 5.0);
  EXPECT_DOUBLE_EQ(bl[0], 6.0);
}

TEST(BottomLevels, TakesMaxOverSuccessors) {
  const Ptg g = testutil::diamond();  // s=1, l=4, r=2, t=1
  const auto bl = bottom_levels(g, flops_time(g));
  EXPECT_DOUBLE_EQ(bl[3], 1.0);
  EXPECT_DOUBLE_EQ(bl[1], 5.0);
  EXPECT_DOUBLE_EQ(bl[2], 3.0);
  EXPECT_DOUBLE_EQ(bl[0], 6.0);  // via the left branch
}

TEST(TopLevels, ExcludesOwnTime) {
  const Ptg g = testutil::diamond();
  const auto tl = top_levels(g, flops_time(g));
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 1.0);
  EXPECT_DOUBLE_EQ(tl[2], 1.0);
  EXPECT_DOUBLE_EQ(tl[3], 5.0);  // 1 + 4
}

TEST(TopBottomLevels, SumIsPathLengthOnCriticalPath) {
  const Ptg g = testutil::diamond();
  const auto bl = bottom_levels(g, flops_time(g));
  const auto tl = top_levels(g, flops_time(g));
  const double cp = critical_path_length(g, flops_time(g));
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_LE(tl[v] + bl[v], cp + 1e-12);
  }
  // Critical tasks achieve equality: 0, 1, 3.
  EXPECT_DOUBLE_EQ(tl[0] + bl[0], cp);
  EXPECT_DOUBLE_EQ(tl[1] + bl[1], cp);
  EXPECT_DOUBLE_EQ(tl[3] + bl[3], cp);
}

TEST(CriticalPath, LengthAndPath) {
  const Ptg g = testutil::diamond();
  EXPECT_DOUBLE_EQ(critical_path_length(g, flops_time(g)), 6.0);
  EXPECT_EQ(critical_path(g, flops_time(g)), (std::vector<TaskId>{0, 1, 3}));
}

TEST(CriticalPath, MultipleSources) {
  const Ptg g = testutil::two_chains();  // b-chain is longer (3+3 vs 2+2)
  EXPECT_DOUBLE_EQ(critical_path_length(g, flops_time(g)), 6.0);
  EXPECT_EQ(critical_path(g, flops_time(g)), (std::vector<TaskId>{2, 3}));
}

TEST(CriticalPath, SingleNode) {
  Ptg g;
  g.add_task(testutil::simple_task("only", 5));
  EXPECT_DOUBLE_EQ(critical_path_length(g, flops_time(g)), 5.0);
  EXPECT_EQ(critical_path(g, flops_time(g)), (std::vector<TaskId>{0}));
}

TEST(CriticalPath, PathEdgesExist) {
  // Property: consecutive critical-path nodes are connected by edges.
  Rng rng(99);
  RandomDagParams params;
  params.num_tasks = 60;
  params.jump = 2;
  const Ptg g = make_random_ptg(params, rng);
  const auto path = critical_path(g, unit_time());
  ASSERT_FALSE(path.empty());
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
  }
  // Path length in unit time equals node count == critical path length.
  EXPECT_DOUBLE_EQ(static_cast<double>(path.size()),
                   critical_path_length(g, unit_time()));
}

TEST(MaxLevelWidth, Diamond) {
  EXPECT_EQ(max_level_width(testutil::diamond()), 2u);
  EXPECT_EQ(max_level_width(testutil::fork_join(6)), 6u);
  EXPECT_EQ(max_level_width(testutil::chain3()), 1u);
}

TEST(BottomLevelsInto, ReusesBuffer) {
  const Ptg g = testutil::chain3();
  const auto topo = topological_order(g);
  std::vector<double> buffer(99, -1.0);
  bottom_levels_into(g, topo, flops_time(g), buffer);
  ASSERT_EQ(buffer.size(), 3u);
  EXPECT_DOUBLE_EQ(buffer[0], 6.0);
}

// Property sweep: on random DAGs bottom levels are consistent with the
// recursive definition.
class BottomLevelProperty : public ::testing::TestWithParam<int> {};

TEST_P(BottomLevelProperty, MatchesRecursiveDefinition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  RandomDagParams params;
  params.num_tasks = 40;
  params.width = 0.5;
  params.jump = GetParam() % 3;
  const Ptg g = make_random_ptg(params, rng);
  const auto time = flops_time(g);
  const auto bl = bottom_levels(g, time);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    double best = 0.0;
    for (const TaskId w : g.successors(v)) best = std::max(best, bl[w]);
    EXPECT_NEAR(bl[v], time(v) + best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, BottomLevelProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace ptgsched
