// Tests for the communication-overhead wrapper model.

#include "model/overhead.hpp"

#include <gtest/gtest.h>

#include "../common/test_graphs.hpp"

namespace ptgsched {
namespace {

Task task_with(double flops, double alpha, double data) {
  Task t;
  t.name = "t";
  t.flops = flops;
  t.alpha = alpha;
  t.data_size = data;
  return t;
}

TEST(OverheadModel, NoOverheadSequential) {
  const OverheadModel m(std::make_shared<AmdahlModel>(), 1.0, 1.0);
  const Cluster c = testutil::unit_cluster(8);
  const Task t = task_with(100.0, 0.0, 1e6);
  const AmdahlModel base;
  EXPECT_DOUBLE_EQ(m.time(t, 1, c), base.time(t, 1, c));
  EXPECT_DOUBLE_EQ(m.overhead(t, 1), 0.0);
}

TEST(OverheadModel, LogTreeRounds) {
  // startup 1 s, bandwidth so large the bytes term vanishes:
  // overhead = ceil(log2(p)).
  const OverheadModel m(std::make_shared<AmdahlModel>(), 1.0, 1e30);
  const Task t = task_with(100.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(m.overhead(t, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.overhead(t, 3), 2.0);
  EXPECT_DOUBLE_EQ(m.overhead(t, 4), 2.0);
  EXPECT_DOUBLE_EQ(m.overhead(t, 5), 3.0);
  EXPECT_DOUBLE_EQ(m.overhead(t, 8), 3.0);
}

TEST(OverheadModel, BandwidthTermScalesWithData) {
  // zero startup, bandwidth 8 bytes/s: overhead = d * rounds.
  const OverheadModel m(std::make_shared<AmdahlModel>(), 0.0, 8.0);
  EXPECT_DOUBLE_EQ(m.overhead(task_with(1, 0, 10.0), 2), 10.0);
  EXPECT_DOUBLE_EQ(m.overhead(task_with(1, 0, 10.0), 4), 20.0);
}

TEST(OverheadModel, ProducesUShapedCurve) {
  // With real overheads, a moderately sized task should have an interior
  // optimal allocation: faster than sequential somewhere, but slower again
  // at full machine width.
  const OverheadModel m(std::make_shared<AmdahlModel>(), 1e-4, 125e6);
  const Cluster c("giga", 64, 1.0);
  const Task t = task_with(5e9, 0.02, 2e6);  // 5 s sequential, 16 MB data
  const double t1 = m.time(t, 1, c);
  double best = t1;
  int best_p = 1;
  for (int p = 2; p <= 64; ++p) {
    const double tp = m.time(t, p, c);
    if (tp < best) {
      best = tp;
      best_p = p;
    }
  }
  EXPECT_GT(best_p, 1);            // parallelism helps...
  EXPECT_LT(best_p, 64);           // ...but not all the way
  EXPECT_GT(m.time(t, 64, c), best);
}

TEST(OverheadModel, NameAndValidation) {
  const OverheadModel m(std::make_shared<SyntheticModel>());
  EXPECT_EQ(m.name(), "synthetic+comm");
  EXPECT_THROW(OverheadModel(nullptr), ModelError);
  EXPECT_THROW(OverheadModel(std::make_shared<AmdahlModel>(), -1.0),
               ModelError);
  EXPECT_THROW(OverheadModel(std::make_shared<AmdahlModel>(), 0.0, 0.0),
               ModelError);
}

TEST(OverheadModel, ArgumentChecksForwarded) {
  const OverheadModel m(std::make_shared<AmdahlModel>());
  const Cluster c = testutil::unit_cluster(4);
  EXPECT_THROW((void)m.time(task_with(1, 0, 1), 0, c), ModelError);
  EXPECT_THROW((void)m.time(task_with(1, 0, 1), 5, c), ModelError);
}

}  // namespace
}  // namespace ptgsched
