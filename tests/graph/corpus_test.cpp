// Tests for the workload corpora (Section IV-C counts and determinism).

#include "daggen/corpus.hpp"

#include <gtest/gtest.h>

namespace ptgsched {
namespace {

TEST(Corpus, FftCyclesThroughSizes) {
  const auto graphs = fft_corpus(8, 1);
  ASSERT_EQ(graphs.size(), 8u);
  EXPECT_EQ(graphs[0].num_tasks(), 5u);
  EXPECT_EQ(graphs[1].num_tasks(), 15u);
  EXPECT_EQ(graphs[2].num_tasks(), 39u);
  EXPECT_EQ(graphs[3].num_tasks(), 95u);
  EXPECT_EQ(graphs[4].num_tasks(), 5u);  // cycle repeats
}

TEST(Corpus, StrassenAll23Tasks) {
  for (const auto& g : strassen_corpus(6, 1)) {
    EXPECT_EQ(g.num_tasks(), 23u);
  }
}

TEST(Corpus, LayeredAndIrregularTaskCounts) {
  for (const auto& g : layered_corpus(100, 5, 1)) {
    EXPECT_EQ(g.num_tasks(), 100u);
  }
  for (const auto& g : irregular_corpus(50, 5, 1)) {
    EXPECT_EQ(g.num_tasks(), 50u);
  }
}

TEST(Corpus, AllGraphsValid) {
  for (const std::string cls : {"fft", "strassen", "layered", "irregular"}) {
    for (const auto& g : corpus_by_name(cls, 20, 6, 42)) {
      EXPECT_NO_THROW(g.validate()) << cls << " " << g.name();
    }
  }
}

TEST(Corpus, SmokePrefixOfFullCorpus) {
  // Subsampling property: instance i is identical whether the corpus has
  // 5 or 50 entries.
  const auto small = irregular_corpus(30, 5, 7);
  const auto large = irregular_corpus(30, 50, 7);
  for (std::size_t i = 0; i < small.size(); ++i) {
    ASSERT_EQ(small[i].num_tasks(), large[i].num_tasks());
    ASSERT_EQ(small[i].num_edges(), large[i].num_edges());
    for (TaskId v = 0; v < small[i].num_tasks(); ++v) {
      EXPECT_DOUBLE_EQ(small[i].task(v).flops, large[i].task(v).flops);
    }
  }
}

TEST(Corpus, SeedChangesContent) {
  const auto a = layered_corpus(50, 3, 1);
  const auto b = layered_corpus(50, 3, 2);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (TaskId v = 0; v < std::min(a[i].num_tasks(), b[i].num_tasks());
         ++v) {
      if (a[i].task(v).flops != b[i].task(v).flops) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Corpus, InstanceNamesAreUnique) {
  const auto graphs = fft_corpus(12, 3);
  std::set<std::string> names;
  for (const auto& g : graphs) names.insert(g.name());
  EXPECT_EQ(names.size(), graphs.size());
}

TEST(Corpus, ByNameDispatchAndErrors) {
  EXPECT_EQ(corpus_by_name("fft", 0, 2, 1).size(), 2u);
  EXPECT_EQ(corpus_by_name("strassen", 0, 2, 1).size(), 2u);
  EXPECT_EQ(corpus_by_name("layered", 20, 2, 1)[0].num_tasks(), 20u);
  EXPECT_THROW((void)corpus_by_name("mystery", 10, 1, 1),
               std::invalid_argument);
}

TEST(Corpus, PaperScaleSizes) {
  EXPECT_EQ(paper_corpus_size("fft"), 400u);
  EXPECT_EQ(paper_corpus_size("strassen"), 100u);
  EXPECT_EQ(paper_corpus_size("layered"), 36u);
  EXPECT_EQ(paper_corpus_size("irregular"), 108u);
  EXPECT_THROW((void)paper_corpus_size("x"), std::invalid_argument);
}

TEST(Corpus, IrregularJumpCycles) {
  // Instances cycle jump over {1, 2, 4}; all must stay irregular (named so).
  const auto graphs = irregular_corpus(40, 9, 5);
  for (const auto& g : graphs) {
    EXPECT_EQ(g.name().rfind("irregular-", 0), 0u) << g.name();
  }
}

}  // namespace
}  // namespace ptgsched
