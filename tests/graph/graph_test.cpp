// Tests for the PTG container invariants.

#include "ptg/graph.hpp"

#include <gtest/gtest.h>

#include "../common/test_graphs.hpp"

namespace ptgsched {
namespace {

using testutil::simple_task;

TEST(Ptg, StartsEmpty) {
  const Ptg g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_tasks(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Ptg, AddTaskAssignsDenseIds) {
  Ptg g;
  EXPECT_EQ(g.add_task(simple_task("a", 1)), 0u);
  EXPECT_EQ(g.add_task(simple_task("b", 1)), 1u);
  EXPECT_EQ(g.add_task(simple_task("c", 1)), 2u);
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_EQ(g.task(1).name, "b");
}

TEST(Ptg, EdgesUpdateAdjacency) {
  Ptg g = testutil::diamond();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Ptg, SourcesAndSinks) {
  const Ptg g = testutil::two_chains();
  EXPECT_EQ(g.sources(), (std::vector<TaskId>{0, 2}));
  EXPECT_EQ(g.sinks(), (std::vector<TaskId>{1, 3}));
}

TEST(Ptg, RejectsSelfLoop) {
  Ptg g;
  g.add_task(simple_task("a", 1));
  EXPECT_THROW(g.add_edge(0, 0), GraphError);
}

TEST(Ptg, RejectsDuplicateEdge) {
  Ptg g;
  g.add_task(simple_task("a", 1));
  g.add_task(simple_task("b", 1));
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), GraphError);
}

TEST(Ptg, RejectsUnknownIds) {
  Ptg g;
  g.add_task(simple_task("a", 1));
  EXPECT_THROW(g.add_edge(0, 5), GraphError);
  EXPECT_THROW(g.add_edge(5, 0), GraphError);
  EXPECT_THROW((void)g.task(3), GraphError);
  EXPECT_THROW((void)g.successors(3), GraphError);
  EXPECT_THROW((void)g.predecessors(3), GraphError);
}

TEST(Ptg, ValidateAcceptsDag) {
  const Ptg g = testutil::diamond();
  EXPECT_NO_THROW(g.validate());
}

TEST(Ptg, ValidateRejectsEmpty) {
  const Ptg g;
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(Ptg, ValidateRejectsCycle) {
  Ptg g;
  g.add_task(simple_task("a", 1));
  g.add_task(simple_task("b", 1));
  g.add_task(simple_task("c", 1));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_THROW(g.validate(), GraphError);
}

TEST(Ptg, ValidateRejectsBadTaskParameters) {
  Ptg g;
  g.add_task(simple_task("a", 0.0));  // non-positive flops
  EXPECT_THROW(g.validate(), GraphError);

  Ptg g2;
  Task t = simple_task("a", 1.0);
  t.alpha = 1.5;
  g2.add_task(t);
  EXPECT_THROW(g2.validate(), GraphError);
}

TEST(Ptg, TotalFlops) {
  const Ptg g = testutil::chain3();
  EXPECT_DOUBLE_EQ(g.total_flops(), 6.0);
}

TEST(Ptg, NameRoundTrip) {
  Ptg g("original");
  EXPECT_EQ(g.name(), "original");
  g.set_name("renamed");
  EXPECT_EQ(g.name(), "renamed");
}

TEST(Ptg, TaskMutationThroughReference) {
  Ptg g = testutil::chain3();
  g.task(0).flops = 42.0;
  EXPECT_DOUBLE_EQ(g.task(0).flops, 42.0);
}

}  // namespace
}  // namespace ptgsched
