// Tests for the FFT and Strassen application graphs (Section IV-C).

#include "daggen/application_graphs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ptg/algorithms.hpp"

namespace ptgsched {
namespace {

TEST(FftShape, PaperTaskCounts) {
  // "We use FFT PTGs with 2, 4, 8, and 16 levels, which lead to 5, 15, 39,
  // or 95 tasks respectively."
  EXPECT_EQ(fft_shape(2).num_tasks(), 5u);
  EXPECT_EQ(fft_shape(4).num_tasks(), 15u);
  EXPECT_EQ(fft_shape(8).num_tasks(), 39u);
  EXPECT_EQ(fft_shape(16).num_tasks(), 95u);
}

TEST(FftShape, IsValidDagWithSingleSource) {
  for (const int n : {2, 4, 8, 16}) {
    const Ptg g = fft_shape(n);
    EXPECT_TRUE(is_acyclic(g));
    EXPECT_EQ(g.sources().size(), 1u) << n;   // the root call task
    EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(n)) << n;
  }
}

TEST(FftShape, DepthMatchesStructure) {
  // Tree of log2(n) edges plus log2(n) butterfly rows.
  for (const int n : {2, 4, 8, 16}) {
    int k = 0;
    while ((1 << k) < n) ++k;
    EXPECT_EQ(num_precedence_levels(fft_shape(n)), 2 * k + 1) << n;
  }
}

TEST(FftShape, ButterflyNodesHaveTwoParents) {
  const Ptg g = fft_shape(8);
  std::size_t butterfly_nodes = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    if (g.task(v).name.rfind("bfly_", 0) == 0) {
      ++butterfly_nodes;
      EXPECT_EQ(g.in_degree(v), 2u) << g.task(v).name;
    }
  }
  EXPECT_EQ(butterfly_nodes, 24u);  // 8 * log2(8)
}

TEST(FftShape, EdgeCount) {
  // Tree: 2n - 2 edges; butterfly: 2 * n * log2(n) edges.
  const Ptg g = fft_shape(16);
  EXPECT_EQ(g.num_edges(), (2u * 16 - 2) + 2u * 16 * 4);
}

TEST(FftShape, RejectsBadPointCounts) {
  EXPECT_THROW((void)fft_shape(0), std::invalid_argument);
  EXPECT_THROW((void)fft_shape(1), std::invalid_argument);
  EXPECT_THROW((void)fft_shape(3), std::invalid_argument);
  EXPECT_THROW((void)fft_shape(12), std::invalid_argument);
}

TEST(StrassenShape, Depth1Has23Tasks) {
  // split + 10 additions + 7 multiplications + 4 combines + join.
  const Ptg g = strassen_shape(1);
  EXPECT_EQ(g.num_tasks(), 23u);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(StrassenShape, SevenMultiplications) {
  const Ptg g = strassen_shape(1);
  std::size_t mults = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const std::string& name = g.task(v).name;
    if (name.find(".M") != std::string::npos &&
        name.find(".S") == std::string::npos &&
        name.find("C") == std::string::npos) {
      ++mults;
    }
  }
  EXPECT_EQ(mults, 7u);
}

TEST(StrassenShape, CombinesDependOnCorrectMultiplications) {
  // C11 = M1 + M4 - M5 + M7 must have in-degree 4; C12 = M3 + M5 has 2.
  const Ptg g = strassen_shape(1);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const std::string& name = g.task(v).name;
    if (name == "mm.C11") EXPECT_EQ(g.in_degree(v), 4u);
    if (name == "mm.C12") EXPECT_EQ(g.in_degree(v), 2u);
    if (name == "mm.C21") EXPECT_EQ(g.in_degree(v), 2u);
    if (name == "mm.C22") EXPECT_EQ(g.in_degree(v), 4u);
  }
}

TEST(StrassenShape, RecursiveExpansion) {
  // Depth 2: each of the 7 multiplications becomes a 23-task subgraph:
  // 16 fixed tasks + 7 * 23.
  const Ptg g = strassen_shape(2);
  EXPECT_EQ(g.num_tasks(), 16u + 7u * 23u);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(StrassenShape, RejectsBadDepth) {
  EXPECT_THROW((void)strassen_shape(0), std::invalid_argument);
}

TEST(MakeApplicationPtgs, AssignsComplexities) {
  Rng rng(5);
  const Ptg fft = make_fft_ptg(8, rng);
  const Ptg strassen = make_strassen_ptg(rng);
  for (const Ptg* g : {&fft, &strassen}) {
    for (TaskId v = 0; v < g->num_tasks(); ++v) {
      EXPECT_GT(g->task(v).flops, 0.0);
      EXPECT_GE(g->task(v).alpha, 0.0);
      EXPECT_LE(g->task(v).alpha, 0.25);
      EXPECT_GT(g->task(v).data_size, 0.0);
    }
  }
}

TEST(MakeApplicationPtgs, SameShapeDifferentCosts) {
  Rng rng1(1);
  Rng rng2(2);
  const Ptg a = make_fft_ptg(8, rng1);
  const Ptg b = make_fft_ptg(8, rng2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  bool any_differs = false;
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    if (a.task(v).flops != b.task(v).flops) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(MakeApplicationPtgs, DeterministicGivenSeed) {
  Rng rng1(77);
  Rng rng2(77);
  const Ptg a = make_strassen_ptg(rng1);
  const Ptg b = make_strassen_ptg(rng2);
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(a.task(v).flops, b.task(v).flops);
    EXPECT_DOUBLE_EQ(a.task(v).alpha, b.task(v).alpha);
  }
}

}  // namespace
}  // namespace ptgsched
