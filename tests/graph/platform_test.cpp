// Tests for the homogeneous cluster platform model.

#include "platform/cluster.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "support/error_context.hpp"

namespace ptgsched {
namespace {

TEST(Cluster, PaperPresets) {
  // Section IV-A: Chti = 20 nodes at 4.3 GFLOPS, Grelon = 120 at 3.1.
  const Cluster c = chti();
  EXPECT_EQ(c.name(), "chti");
  EXPECT_EQ(c.num_processors(), 20);
  EXPECT_DOUBLE_EQ(c.gflops(), 4.3);

  const Cluster g = grelon();
  EXPECT_EQ(g.name(), "grelon");
  EXPECT_EQ(g.num_processors(), 120);
  EXPECT_DOUBLE_EQ(g.gflops(), 3.1);
}

TEST(Cluster, SequentialTime) {
  const Cluster c("test", 4, 2.0);  // 2 GFLOPS
  EXPECT_DOUBLE_EQ(c.flops_per_second(), 2e9);
  EXPECT_DOUBLE_EQ(c.sequential_time(4e9), 2.0);
}

TEST(Cluster, ClampAllocation) {
  const Cluster c("test", 16, 1.0);
  EXPECT_EQ(c.clamp_allocation(-5), 1);
  EXPECT_EQ(c.clamp_allocation(0), 1);
  EXPECT_EQ(c.clamp_allocation(7), 7);
  EXPECT_EQ(c.clamp_allocation(16), 16);
  EXPECT_EQ(c.clamp_allocation(1000), 16);
}

TEST(Cluster, RejectsBadParameters) {
  EXPECT_THROW(Cluster("x", 0, 1.0), PlatformError);
  EXPECT_THROW(Cluster("x", -3, 1.0), PlatformError);
  EXPECT_THROW(Cluster("x", 4, 0.0), PlatformError);
  EXPECT_THROW(Cluster("x", 4, -1.0), PlatformError);
}

TEST(Cluster, JsonRoundTrip) {
  const Cluster c("mycluster", 64, 2.75);
  const Cluster back = Cluster::from_json(c.to_json());
  EXPECT_EQ(back.name(), "mycluster");
  EXPECT_EQ(back.num_processors(), 64);
  EXPECT_DOUBLE_EQ(back.gflops(), 2.75);
}

TEST(Cluster, JsonRejectsImplausible) {
  Json doc = chti().to_json();
  doc.as_object()["processors"] = Json(0);
  EXPECT_THROW((void)Cluster::from_json(doc), PlatformError);
  doc.as_object()["processors"] = Json(std::int64_t{2'000'000});
  EXPECT_THROW((void)Cluster::from_json(doc), PlatformError);
}

TEST(Cluster, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "ptgsched_platform.json";
  grelon().save(path.string());
  const Cluster back = Cluster::load(path.string());
  EXPECT_EQ(back.num_processors(), 120);
  std::filesystem::remove(path);
}

TEST(Cluster, LoadErrorCarriesPathAndOffendingKey) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_platform_malformed.json";
  // Valid JSON, but "gflops" is missing.
  Json::parse(R"({"name": "broken", "processors": 8})")
      .write_file(path.string());
  try {
    (void)Cluster::load(path.string());
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_EQ(e.path(), path.string());
    const std::string what = e.what();
    EXPECT_NE(what.find(path.string()), std::string::npos);
    EXPECT_NE(what.find("gflops"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Cluster, LoadErrorOnMissingFile) {
  EXPECT_THROW((void)Cluster::load("/nonexistent/ptgsched/cluster.json"),
               LoadError);
}

TEST(PlatformByName, LookupAndErrors) {
  EXPECT_EQ(platform_by_name("chti").num_processors(), 20);
  EXPECT_EQ(platform_by_name("grelon").num_processors(), 120);
  EXPECT_THROW((void)platform_by_name("nope"), PlatformError);
  EXPECT_THROW((void)platform_by_name("Chti"), PlatformError);
}

}  // namespace
}  // namespace ptgsched
