// Tests for the homogeneous cluster platform model.

#include "platform/cluster.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <vector>

#include "support/error_context.hpp"

namespace ptgsched {
namespace {

TEST(Cluster, PaperPresets) {
  // Section IV-A: Chti = 20 nodes at 4.3 GFLOPS, Grelon = 120 at 3.1.
  const Cluster c = chti();
  EXPECT_EQ(c.name(), "chti");
  EXPECT_EQ(c.num_processors(), 20);
  EXPECT_DOUBLE_EQ(c.gflops(), 4.3);

  const Cluster g = grelon();
  EXPECT_EQ(g.name(), "grelon");
  EXPECT_EQ(g.num_processors(), 120);
  EXPECT_DOUBLE_EQ(g.gflops(), 3.1);
}

TEST(Cluster, SequentialTime) {
  const Cluster c("test", 4, 2.0);  // 2 GFLOPS
  EXPECT_DOUBLE_EQ(c.flops_per_second(), 2e9);
  EXPECT_DOUBLE_EQ(c.sequential_time(4e9), 2.0);
}

TEST(Cluster, ClampAllocation) {
  const Cluster c("test", 16, 1.0);
  EXPECT_EQ(c.clamp_allocation(-5), 1);
  EXPECT_EQ(c.clamp_allocation(0), 1);
  EXPECT_EQ(c.clamp_allocation(7), 7);
  EXPECT_EQ(c.clamp_allocation(16), 16);
  EXPECT_EQ(c.clamp_allocation(1000), 16);
}

TEST(Cluster, RejectsBadParameters) {
  EXPECT_THROW(Cluster("x", 0, 1.0), PlatformError);
  EXPECT_THROW(Cluster("x", -3, 1.0), PlatformError);
  EXPECT_THROW(Cluster("x", 4, 0.0), PlatformError);
  EXPECT_THROW(Cluster("x", 4, -1.0), PlatformError);
}

TEST(Cluster, JsonRoundTrip) {
  const Cluster c("mycluster", 64, 2.75);
  const Cluster back = Cluster::from_json(c.to_json());
  EXPECT_EQ(back.name(), "mycluster");
  EXPECT_EQ(back.num_processors(), 64);
  EXPECT_DOUBLE_EQ(back.gflops(), 2.75);
}

TEST(Cluster, JsonRejectsImplausible) {
  Json doc = chti().to_json();
  doc.as_object()["processors"] = Json(0);
  EXPECT_THROW((void)Cluster::from_json(doc), PlatformError);
  doc.as_object()["processors"] = Json(std::int64_t{2'000'000});
  EXPECT_THROW((void)Cluster::from_json(doc), PlatformError);
}

TEST(Cluster, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "ptgsched_platform.json";
  grelon().save(path.string());
  const Cluster back = Cluster::load(path.string());
  EXPECT_EQ(back.num_processors(), 120);
  std::filesystem::remove(path);
}

TEST(Cluster, LoadErrorCarriesPathAndOffendingKey) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_platform_malformed.json";
  // Valid JSON, but "gflops" is missing.
  Json::parse(R"({"name": "broken", "processors": 8})")
      .write_file(path.string());
  try {
    (void)Cluster::load(path.string());
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_EQ(e.path(), path.string());
    const std::string what = e.what();
    EXPECT_NE(what.find(path.string()), std::string::npos);
    EXPECT_NE(what.find("gflops"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Cluster, LoadErrorOnMissingFile) {
  EXPECT_THROW((void)Cluster::load("/nonexistent/ptgsched/cluster.json"),
               LoadError);
}

TEST(PlatformByName, LookupAndErrors) {
  EXPECT_EQ(platform_by_name("chti").num_processors(), 20);
  EXPECT_EQ(platform_by_name("grelon").num_processors(), 120);
  EXPECT_THROW((void)platform_by_name("nope"), PlatformError);
  EXPECT_THROW((void)platform_by_name("Chti"), PlatformError);
  // Heterogeneous presets ride the same lookup.
  EXPECT_TRUE(platform_by_name("chti-hetero").heterogeneous());
  EXPECT_EQ(platform_by_name("grelon-hetero").num_processors(), 120);
}

TEST(HeteroCluster, DefaultsAreHomogeneous) {
  const Cluster c("flat", 8, 2.0);
  EXPECT_FALSE(c.heterogeneous());
  EXPECT_FALSE(c.has_comm_costs());
  for (int j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(c.relative_speed(j), 1.0);
    for (int k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(c.comm_cost(j, k), 0.0);
  }
  EXPECT_DOUBLE_EQ(c.mean_relative_speed(), 1.0);
  EXPECT_DOUBLE_EQ(c.mean_comm_cost(), 0.0);
}

TEST(HeteroCluster, SpeedsAndCommAccessors) {
  const Cluster c("het", 3, 2.0, {1.0, 0.5, 2.0},
                  {0.0, 1.0, 2.0,
                   1.0, 0.0, 3.0,
                   2.0, 3.0, 0.0});
  EXPECT_TRUE(c.heterogeneous());
  EXPECT_TRUE(c.has_comm_costs());
  EXPECT_DOUBLE_EQ(c.relative_speed(1), 0.5);
  EXPECT_DOUBLE_EQ(c.relative_speed(2), 2.0);
  EXPECT_THROW((void)c.relative_speed(3), PlatformError);
  EXPECT_THROW((void)c.relative_speed(-1), PlatformError);
  EXPECT_DOUBLE_EQ(c.comm_cost(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(c.comm_cost(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(c.mean_relative_speed(), 3.5 / 3.0);
  // Mean over ordered pairs i != j: (1+2+1+3+2+3)/6.
  EXPECT_DOUBLE_EQ(c.mean_comm_cost(), 2.0);
}

TEST(HeteroCluster, ConstructorRejectsBadSpeedsAndMatrices) {
  const std::vector<double> nan_speed = {
      1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0}), PlatformError);  // size
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0, 0.0}), PlatformError);
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0, -2.0}), PlatformError);
  EXPECT_THROW(Cluster("x", 2, 1.0, nan_speed), PlatformError);
  // Non-square, asymmetric, negative cell, nonzero diagonal.
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0, 1.0}, {0.0, 1.0}), PlatformError);
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0, 1.0}, {0.0, 1.0, 2.0, 0.0}),
               PlatformError);
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0, 1.0}, {0.0, -1.0, -1.0, 0.0}),
               PlatformError);
  EXPECT_THROW(Cluster("x", 2, 1.0, {1.0, 1.0}, {0.5, 1.0, 1.0, 0.0}),
               PlatformError);
}

TEST(HeteroCluster, JsonRoundTripPreservesSpeedsAndComm) {
  const Cluster c("het", 3, 1.5, {1.0, 0.75, 1.25},
                  {0.0, 0.5, 0.5,
                   0.5, 0.0, 0.5,
                   0.5, 0.5, 0.0});
  const Cluster back = Cluster::from_json(c.to_json());
  EXPECT_TRUE(back.heterogeneous());
  EXPECT_TRUE(back.has_comm_costs());
  EXPECT_EQ(back.relative_speeds(), c.relative_speeds());
  EXPECT_EQ(back.comm_matrix(), c.comm_matrix());
  // A homogeneous cluster's document carries neither field, and loads
  // back homogeneous.
  const Json flat_doc = Cluster("flat", 4, 1.0).to_json();
  EXPECT_FALSE(flat_doc.as_object().count("speeds"));
  EXPECT_FALSE(flat_doc.as_object().count("comm_costs"));
  EXPECT_FALSE(Cluster::from_json(flat_doc).heterogeneous());
}

TEST(HeteroCluster, FileRoundTripAndLoadErrorsNameSpeedKeys) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_platform_hetero.json";
  heterogeneous_variant(chti(), 0.25).save(path.string());
  const Cluster back = Cluster::load(path.string());
  EXPECT_TRUE(back.heterogeneous());
  EXPECT_TRUE(back.has_comm_costs());
  EXPECT_EQ(back.relative_speeds(),
            heterogeneous_variant(chti(), 0.25).relative_speeds());

  // NaN speed in the file: the LoadError names the path AND the cell.
  Json doc = chti().to_json();
  doc.as_object()["speeds"] = Json::parse("[1.0]");
  doc.write_file(path.string());
  try {
    (void)Cluster::load(path.string());
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_EQ(e.path(), path.string());
    EXPECT_NE(std::string(e.what()).find("speeds"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(HeteroCluster, VariantsAreDeterministicAndDegenerate) {
  const Cluster het = heterogeneous_variant(chti());
  EXPECT_TRUE(het.heterogeneous());
  EXPECT_FALSE(het.has_comm_costs());
  EXPECT_EQ(het.num_processors(), chti().num_processors());

  const Cluster flat = degenerate_hetero_variant(chti());
  // Structurally heterogeneous — the fields are PRESENT — but every
  // value is the homogeneous identity, for degeneracy tests.
  EXPECT_TRUE(flat.heterogeneous());
  EXPECT_TRUE(flat.has_comm_costs());
  for (int j = 0; j < flat.num_processors(); ++j) {
    EXPECT_EQ(flat.relative_speed(j), 1.0);
  }
  EXPECT_EQ(flat.mean_comm_cost(), 0.0);
}

}  // namespace
}  // namespace ptgsched
