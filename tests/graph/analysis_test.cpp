// Tests for the PTG structural statistics.

#include "ptg/analysis.hpp"

#include <gtest/gtest.h>

#include "../common/test_graphs.hpp"
#include "daggen/application_graphs.hpp"
#include "daggen/random_dag.hpp"

namespace ptgsched {
namespace {

TEST(Analyze, DiamondExactNumbers) {
  const GraphStats s = analyze(testutil::diamond());
  EXPECT_EQ(s.tasks, 4u);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.levels, 3);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_DOUBLE_EQ(s.mean_width, 4.0 / 3.0);
  EXPECT_EQ(s.sources, 1u);
  EXPECT_EQ(s.sinks, 1u);
  EXPECT_EQ(s.max_jump, 1u);
  // Non-source tasks: l (1), r (1), t (2) -> mean 4/3.
  EXPECT_DOUBLE_EQ(s.mean_in_degree, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.serial_fraction, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.total_flops, 8.0);
}

TEST(Analyze, ChainIsFullySerial) {
  const GraphStats s = analyze(testutil::chain3());
  EXPECT_DOUBLE_EQ(s.serial_fraction, 1.0);
  EXPECT_EQ(s.max_width, 1u);
  EXPECT_DOUBLE_EQ(s.width_cv, 0.0);
}

TEST(Analyze, JumpDetected) {
  Ptg g;
  const TaskId a = g.add_task(testutil::simple_task("a", 1));
  const TaskId b = g.add_task(testutil::simple_task("b", 1));
  const TaskId c = g.add_task(testutil::simple_task("c", 1));
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(a, c);  // spans 2 levels
  EXPECT_EQ(analyze(g).max_jump, 2u);
}

TEST(Analyze, FftStats) {
  const GraphStats s = analyze(fft_shape(8));
  EXPECT_EQ(s.tasks, 39u);
  EXPECT_EQ(s.levels, 7);  // 2 * log2(8) + 1
  EXPECT_EQ(s.max_width, 8u);
  EXPECT_EQ(s.sources, 1u);
  EXPECT_EQ(s.sinks, 8u);
  EXPECT_EQ(s.max_jump, 1u);  // FFT is layered
}

TEST(Analyze, WidthCvReflectsIrregularity) {
  Rng rng(3);
  RandomDagParams regular;
  regular.num_tasks = 96;
  regular.width = 0.5;
  regular.regularity = 1.0;
  regular.jump = 0;
  RandomDagParams ragged = regular;
  ragged.regularity = 0.0;
  double cv_regular = 0.0;
  double cv_ragged = 0.0;
  for (int i = 0; i < 8; ++i) {
    cv_regular += analyze(make_random_ptg(regular, rng)).width_cv;
    cv_ragged += analyze(make_random_ptg(ragged, rng)).width_cv;
  }
  EXPECT_LT(cv_regular, cv_ragged);
}

TEST(Analyze, RejectsInvalidGraph) {
  const Ptg g;
  EXPECT_THROW((void)analyze(g), GraphError);
}

TEST(FormatStats, ContainsKeyFigures) {
  const std::string text = format_stats(analyze(testutil::diamond()));
  EXPECT_NE(text.find("tasks: 4"), std::string::npos);
  EXPECT_NE(text.find("levels: 3"), std::string::npos);
  EXPECT_NE(text.find("sinks: 1"), std::string::npos);
}

TEST(StatsJson, RoundTripsThroughParser) {
  const Json doc = stats_to_json(analyze(testutil::fork_join(4)));
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("tasks").as_int(), 6);
  EXPECT_EQ(back.at("max_width").as_int(), 4);
  EXPECT_EQ(back.at("sources").as_int(), 1);
}

}  // namespace
}  // namespace ptgsched
