// Tests for the execution-time models (Section IV-B), including the
// monotonicity property of Model 1 and the non-monotonicity of Model 2.

#include "model/execution_time.hpp"

#include <gtest/gtest.h>

#include "../common/test_graphs.hpp"

namespace ptgsched {
namespace {

Task task_with(double flops, double alpha) {
  Task t;
  t.name = "t";
  t.flops = flops;
  t.alpha = alpha;
  return t;
}

TEST(PerfectSquare, KnownValues) {
  EXPECT_TRUE(is_perfect_square(1));
  EXPECT_TRUE(is_perfect_square(4));
  EXPECT_TRUE(is_perfect_square(9));
  EXPECT_TRUE(is_perfect_square(100));
  EXPECT_FALSE(is_perfect_square(2));
  EXPECT_FALSE(is_perfect_square(8));
  EXPECT_FALSE(is_perfect_square(99));
  EXPECT_FALSE(is_perfect_square(0));
  EXPECT_FALSE(is_perfect_square(-4));
}

TEST(AmdahlModel, SequentialTimeMatchesCluster) {
  const AmdahlModel m;
  const Cluster c("c", 8, 2.0);  // 2e9 flops/s
  EXPECT_DOUBLE_EQ(m.time(task_with(4e9, 0.5), 1, c), 2.0);
}

TEST(AmdahlModel, FormulaExact) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(16);
  // T(v,p) = (alpha + (1-alpha)/p) * T1 with T1 = 100s, alpha = 0.2, p = 4.
  EXPECT_DOUBLE_EQ(m.time(task_with(100.0, 0.2), 4, c), (0.2 + 0.8 / 4) * 100);
}

TEST(AmdahlModel, FullyParallelTask) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(10);
  EXPECT_DOUBLE_EQ(m.time(task_with(100.0, 0.0), 10, c), 10.0);
}

TEST(AmdahlModel, FullySerialTaskIgnoresProcessors) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(10);
  EXPECT_DOUBLE_EQ(m.time(task_with(100.0, 1.0), 1, c),
                   m.time(task_with(100.0, 1.0), 10, c));
}

TEST(AmdahlModel, MonotonicallyNonIncreasing) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(64);
  const Task t = task_with(1000.0, 0.1);
  for (int p = 1; p < 64; ++p) {
    EXPECT_LE(m.time(t, p + 1, c), m.time(t, p, c)) << "p=" << p;
  }
}

TEST(AmdahlModel, AsymptoteIsSerialFraction) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(10000);
  const Task t = task_with(100.0, 0.25);
  EXPECT_NEAR(m.time(t, 10000, c), 25.0, 0.01);
}

TEST(Model, RejectsOutOfRangeAllocation) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(8);
  EXPECT_THROW((void)m.time(task_with(1, 0), 0, c), ModelError);
  EXPECT_THROW((void)m.time(task_with(1, 0), 9, c), ModelError);
  EXPECT_THROW((void)m.time(task_with(1, 0), -1, c), ModelError);
}

TEST(Model, RejectsBadTask) {
  const AmdahlModel m;
  const Cluster c = testutil::unit_cluster(8);
  EXPECT_THROW((void)m.time(task_with(0.0, 0.0), 1, c), ModelError);
  EXPECT_THROW((void)m.time(task_with(1.0, 2.0), 1, c), ModelError);
}

TEST(SyntheticModel, PenaltyRules) {
  // Algorithm 1 (prose convention): no penalty for p = 1 and even perfect
  // squares; x1.3 for odd p; x1.1 for even non-squares.
  const SyntheticModel m;
  EXPECT_DOUBLE_EQ(m.penalty(1), 1.0);
  EXPECT_DOUBLE_EQ(m.penalty(2), 1.1);
  EXPECT_DOUBLE_EQ(m.penalty(3), 1.3);
  EXPECT_DOUBLE_EQ(m.penalty(4), 1.0);
  EXPECT_DOUBLE_EQ(m.penalty(5), 1.3);
  EXPECT_DOUBLE_EQ(m.penalty(6), 1.1);
  EXPECT_DOUBLE_EQ(m.penalty(8), 1.1);
  EXPECT_DOUBLE_EQ(m.penalty(9), 1.3);  // odd beats square
  EXPECT_DOUBLE_EQ(m.penalty(16), 1.0);
  EXPECT_DOUBLE_EQ(m.penalty(36), 1.0);
  EXPECT_DOUBLE_EQ(m.penalty(100), 1.0);
}

TEST(SyntheticModel, MatchesAmdahlTimesPenalty) {
  const SyntheticModel m;
  const AmdahlModel base;
  const Cluster c = testutil::unit_cluster(32);
  const Task t = task_with(1000.0, 0.05);
  for (int p = 1; p <= 32; ++p) {
    EXPECT_DOUBLE_EQ(m.time(t, p, c), base.time(t, p, c) * m.penalty(p));
  }
}

TEST(SyntheticModel, IsNonMonotonic) {
  // The defining property: somewhere T increases with p.
  const SyntheticModel m;
  const Cluster c = testutil::unit_cluster(32);
  const Task t = task_with(1000.0, 0.05);
  bool increases = false;
  for (int p = 1; p < 32; ++p) {
    if (m.time(t, p + 1, c) > m.time(t, p, c)) increases = true;
  }
  EXPECT_TRUE(increases);
  // Concretely: 4 -> 5 processors gets slower for a scalable task.
  EXPECT_GT(m.time(t, 5, c), m.time(t, 4, c));
}

TEST(SyntheticModel, ConfigurablePenalties) {
  const SyntheticModel m(2.0, 1.5);
  EXPECT_DOUBLE_EQ(m.penalty(3), 2.0);
  EXPECT_DOUBLE_EQ(m.penalty(2), 1.5);
  EXPECT_THROW(SyntheticModel(0.5, 1.0), ModelError);
}

TEST(DowneyModel, SpeedupBasics) {
  // S(1) = 1; S saturates at A.
  EXPECT_DOUBLE_EQ(DowneyModel::speedup(1.0, 10.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(DowneyModel::speedup(100.0, 10.0, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(DowneyModel::speedup(100.0, 10.0, 2.0), 10.0);
}

TEST(DowneyModel, LowVarianceNearLinearStart) {
  // sigma = 0: S(n) = n up to A.
  EXPECT_NEAR(DowneyModel::speedup(5.0, 10.0, 0.0), 5.0, 1e-12);
}

TEST(DowneyModel, SpeedupMonotoneInProcessors) {
  for (const double sigma : {0.0, 0.5, 1.0, 2.0}) {
    double prev = 0.0;
    for (int n = 1; n <= 64; ++n) {
      const double s = DowneyModel::speedup(n, 12.0, sigma);
      EXPECT_GE(s + 1e-12, prev) << "sigma=" << sigma << " n=" << n;
      prev = s;
    }
  }
}

TEST(DowneyModel, TimeDecreasesWithProcessors) {
  const DowneyModel m(0.5);
  const Cluster c = testutil::unit_cluster(64);
  const Task t = task_with(1000.0, 0.1);  // A = 10
  for (int p = 1; p < 64; ++p) {
    EXPECT_LE(m.time(t, p + 1, c), m.time(t, p, c) + 1e-12);
  }
}

TEST(DowneyModel, AlphaZeroUsesParallelismCap) {
  const DowneyModel m(0.0, 16.0);
  const Cluster c = testutil::unit_cluster(64);
  const Task t = task_with(64.0, 0.0);
  EXPECT_NEAR(m.time(t, 64, c), 64.0 / 16.0, 1e-9);
}

TEST(PenaltyTableModel, AppliesTable) {
  auto base = std::make_shared<AmdahlModel>();
  const PenaltyTableModel m(base, {1.0, 2.0, 3.0});
  const Cluster c = testutil::unit_cluster(8);
  const Task t = task_with(100.0, 0.0);
  EXPECT_DOUBLE_EQ(m.time(t, 1, c), 100.0);
  EXPECT_DOUBLE_EQ(m.time(t, 2, c), 50.0 * 2.0);
  EXPECT_DOUBLE_EQ(m.time(t, 3, c), 100.0 / 3.0 * 3.0);
  // Beyond the table: last entry reused.
  EXPECT_DOUBLE_EQ(m.time(t, 8, c), 100.0 / 8.0 * 3.0);
  EXPECT_EQ(m.name(), "amdahl+table");
}

TEST(PenaltyTableModel, RejectsBadTable) {
  auto base = std::make_shared<AmdahlModel>();
  EXPECT_THROW(PenaltyTableModel(base, {}), ModelError);
  EXPECT_THROW(PenaltyTableModel(base, {1.0, 0.0}), ModelError);
  EXPECT_THROW(PenaltyTableModel(base, {1.0, -2.0}), ModelError);
  EXPECT_THROW(PenaltyTableModel(nullptr, {1.0}), ModelError);
}

TEST(PenaltyTableModel, AllOnesTableIsIdentity) {
  auto base = std::make_shared<SyntheticModel>();
  const PenaltyTableModel m(base, {1.0});
  const Cluster c = testutil::unit_cluster(16);
  const Task t = task_with(250.0, 0.3);
  for (int p = 1; p <= 16; ++p) {
    EXPECT_DOUBLE_EQ(m.time(t, p, c), base->time(t, p, c));
  }
  EXPECT_EQ(m.name(), "synthetic+table");
}

TEST(PenaltyTableModel, ComposesWithAnyBaseAndChecksArgs) {
  // A sub-unit multiplier models a speedup correction; the wrapper must
  // still delegate argument validation to check_args like every model.
  auto base = std::make_shared<DowneyModel>(0.5);
  const PenaltyTableModel m(base, {1.0, 0.5});
  const Cluster c = testutil::unit_cluster(8);
  const Task t = task_with(100.0, 0.1);
  EXPECT_DOUBLE_EQ(m.time(t, 1, c), base->time(t, 1, c));
  EXPECT_DOUBLE_EQ(m.time(t, 4, c), base->time(t, 4, c) * 0.5);
  EXPECT_THROW((void)m.time(t, 0, c), ModelError);
  EXPECT_THROW((void)m.time(t, 9, c), ModelError);
}

TEST(MakeModel, FactoryNames) {
  EXPECT_EQ(make_model("amdahl")->name(), "amdahl");
  EXPECT_EQ(make_model("model1")->name(), "amdahl");
  EXPECT_EQ(make_model("synthetic")->name(), "synthetic");
  EXPECT_EQ(make_model("model2")->name(), "synthetic");
  EXPECT_EQ(make_model("downey")->name(), "downey");
  EXPECT_THROW((void)make_model("gpt"), ModelError);
}

}  // namespace
}  // namespace ptgsched
