// Tests for PTG serialization (JSON round-trip, DOT export).

#include "ptg/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "../common/test_graphs.hpp"
#include "daggen/application_graphs.hpp"
#include "support/error_context.hpp"

namespace ptgsched {
namespace {

bool graphs_equal(const Ptg& a, const Ptg& b) {
  if (a.num_tasks() != b.num_tasks() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    const Task& ta = a.task(v);
    const Task& tb = b.task(v);
    if (ta.name != tb.name || ta.flops != tb.flops ||
        ta.alpha != tb.alpha || ta.data_size != tb.data_size) {
      return false;
    }
    const auto sa = a.successors(v);
    const auto sb = b.successors(v);
    if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) return false;
  }
  return true;
}

TEST(PtgJson, RoundTripDiamond) {
  const Ptg g = testutil::diamond();
  const Ptg back = ptg_from_json(ptg_to_json(g));
  EXPECT_TRUE(graphs_equal(g, back));
  EXPECT_EQ(back.name(), "diamond");
}

TEST(PtgJson, RoundTripFft) {
  Rng rng(3);
  const Ptg g = make_fft_ptg(8, rng);
  const Ptg back = ptg_from_json(ptg_to_json(g));
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(PtgJson, SerializedTextRoundTrip) {
  const Ptg g = testutil::fork_join(3);
  const std::string text = ptg_to_json(g).dump(2);
  const Ptg back = ptg_from_json(Json::parse(text));
  EXPECT_TRUE(graphs_equal(g, back));
}

TEST(PtgJson, RejectsBadEdges) {
  Json doc = ptg_to_json(testutil::chain3());
  doc.at("edges");  // exists
  Json bad = doc;
  bad.as_object()["edges"] = Json::parse("[[0]]");
  EXPECT_THROW((void)ptg_from_json(bad), LoadError);
  bad.as_object()["edges"] = Json::parse("[[0, -1]]");
  EXPECT_THROW((void)ptg_from_json(bad), LoadError);
  bad.as_object()["edges"] = Json::parse("[[0, 99]]");
  EXPECT_THROW((void)ptg_from_json(bad), LoadError);
}

TEST(PtgJson, RejectsCyclicDocument) {
  Json doc = ptg_to_json(testutil::chain3());
  doc.as_object()["edges"] = Json::parse("[[0,1],[1,2],[2,0]]");
  EXPECT_THROW((void)ptg_from_json(doc), LoadError);
}

TEST(PtgJson, MissingTasksKeyThrows) {
  EXPECT_THROW((void)ptg_from_json(Json::parse("{}")), JsonError);
}

TEST(PtgJson, DefaultsForOptionalFields) {
  const Json doc = Json::parse(
      R"({"tasks": [{"flops": 2.0}, {"flops": 3.0}], "edges": [[0,1]]})");
  const Ptg g = ptg_from_json(doc);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(g.task(0).alpha, 0.0);
  EXPECT_EQ(g.name(), "ptg");
}

TEST(PtgFile, SaveAndLoad) {
  const auto path =
      std::filesystem::temp_directory_path() / "ptgsched_io_test.json";
  const Ptg g = testutil::diamond();
  save_ptg(g, path.string());
  const Ptg back = load_ptg(path.string());
  EXPECT_TRUE(graphs_equal(g, back));
  std::filesystem::remove(path);
}

TEST(PtgDot, ContainsNodesAndEdges) {
  const std::string dot = ptg_to_dot(testutil::diamond());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
  EXPECT_NE(dot.find("\"s\\n"), std::string::npos);  // task label
}

TEST(PtgFile, LoadErrorCarriesPathAndOffendingKey) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_io_malformed.json";
  {
    // Valid JSON, but the second task is missing its required "flops".
    Json doc = Json::parse(
        R"({"tasks": [{"flops": 1.0}, {"name": "broken"}], "edges": []})");
    doc.write_file(path.string());
  }
  try {
    (void)load_ptg(path.string());
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    EXPECT_EQ(e.path(), path.string());
    const std::string what = e.what();
    EXPECT_NE(what.find(path.string()), std::string::npos);
    EXPECT_NE(what.find("flops"), std::string::npos);
    EXPECT_NE(what.find("task #1"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(PtgFile, LoadErrorOnMissingTasksKeyNamesTheKey) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ptgsched_io_no_tasks.json";
  Json::parse("{}").write_file(path.string());
  try {
    (void)load_ptg(path.string());
    FAIL() << "expected LoadError";
  } catch (const LoadError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path.string()), std::string::npos);
    EXPECT_NE(what.find("tasks"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(PtgFile, LoadErrorOnMissingFile) {
  EXPECT_THROW((void)load_ptg("/nonexistent/ptgsched/graph.json"),
               LoadError);
}

TEST(PtgDot, UnnamedTasksGetIds) {
  Ptg g;
  Task t;
  t.flops = 1.0;
  g.add_task(t);
  const std::string dot = ptg_to_dot(g);
  EXPECT_NE(dot.find("v0"), std::string::npos);
}

}  // namespace
}  // namespace ptgsched
