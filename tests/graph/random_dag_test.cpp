// Tests for the DAGGEN-style random PTG generator and the complexity
// sampler (Section IV-C).

#include "daggen/random_dag.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ptg/algorithms.hpp"

namespace ptgsched {
namespace {

RandomDagParams params_with(int n, double width, double reg, double dens,
                            int jump) {
  RandomDagParams p;
  p.num_tasks = n;
  p.width = width;
  p.regularity = reg;
  p.density = dens;
  p.jump = jump;
  return p;
}

TEST(RandomDag, ExactTaskCount) {
  Rng rng(1);
  for (const int n : {1, 5, 20, 50, 100}) {
    const Ptg g = make_random_ptg(params_with(n, 0.5, 0.5, 0.5, 1), rng);
    EXPECT_EQ(g.num_tasks(), static_cast<std::size_t>(n));
  }
}

TEST(RandomDag, AlwaysAcyclicAndValid) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Ptg g = make_random_ptg(params_with(50, 0.5, 0.2, 0.8, 4), rng);
    EXPECT_NO_THROW(g.validate());
  }
}

TEST(RandomDag, EveryNonSourceLevelTaskHasAParent) {
  Rng rng(3);
  const Ptg g = make_random_ptg(params_with(80, 0.5, 0.2, 0.2, 2), rng);
  // Sources must all live in construction level 0; since level 0 has at
  // most ceil(width jitter) tasks, most tasks must have parents. A robust
  // proxy: the graph is connected enough that #sources << n.
  EXPECT_LT(g.sources().size(), g.num_tasks() / 2);
}

TEST(RandomDag, WidthControlsParallelism) {
  Rng rng(4);
  // Average max level width over several instances.
  double narrow = 0.0;
  double wide = 0.0;
  for (int i = 0; i < 10; ++i) {
    narrow += static_cast<double>(
        max_level_width(make_random_ptg(params_with(100, 0.2, 0.8, 0.5, 0), rng)));
    wide += static_cast<double>(
        max_level_width(make_random_ptg(params_with(100, 0.8, 0.8, 0.5, 0), rng)));
  }
  EXPECT_LT(narrow, wide);
  // Mean width n^0.2 ~ 2.5 vs n^0.8 ~ 40.
  EXPECT_LT(narrow / 10.0, 10.0);
  EXPECT_GT(wide / 10.0, 20.0);
}

TEST(RandomDag, LayeredHasOnlyAdjacentLevelEdges) {
  Rng rng(5);
  const Ptg g = make_random_ptg(params_with(60, 0.5, 0.2, 0.5, 0), rng);
  const auto level = precedence_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const TaskId w : g.successors(v)) {
      EXPECT_EQ(level[w], level[v] + 1)
          << "edge " << v << "->" << w << " skips levels in a layered DAG";
    }
  }
}

TEST(RandomDag, JumpAllowsLongEdges) {
  Rng rng(6);
  bool found_long_edge = false;
  for (int trial = 0; trial < 10 && !found_long_edge; ++trial) {
    const Ptg g = make_random_ptg(params_with(100, 0.8, 0.8, 0.5, 4), rng);
    const auto level = precedence_levels(g);
    for (TaskId v = 0; v < g.num_tasks() && !found_long_edge; ++v) {
      for (const TaskId w : g.successors(v)) {
        if (level[w] > level[v] + 1) found_long_edge = true;
      }
    }
  }
  EXPECT_TRUE(found_long_edge);
}

TEST(RandomDag, DensityControlsEdgeCount) {
  Rng rng(7);
  std::size_t sparse = 0;
  std::size_t dense = 0;
  for (int i = 0; i < 10; ++i) {
    sparse += make_random_ptg(params_with(100, 0.8, 0.8, 0.2, 0), rng)
                  .num_edges();
    dense += make_random_ptg(params_with(100, 0.8, 0.8, 0.8, 0), rng)
                 .num_edges();
  }
  EXPECT_LT(sparse, dense);
}

TEST(RandomDag, RegularityControlsLevelVariance) {
  Rng rng(8);
  // With regularity 1.0 every level has exactly round(n^width) tasks.
  const Ptg g = make_random_ptg(params_with(96, 0.5, 1.0, 0.5, 0), rng);
  const auto by_level = tasks_by_level(g);
  for (std::size_t l = 0; l + 1 < by_level.size(); ++l) {
    EXPECT_EQ(by_level[l].size(),
              static_cast<std::size_t>(std::lround(std::pow(96.0, 0.5))));
  }
}

TEST(RandomDag, LayeredTasksInLevelHaveSimilarWork) {
  Rng rng(9);
  const Ptg g = make_random_ptg(params_with(90, 0.8, 0.8, 0.5, 0), rng);
  for (const auto& level : tasks_by_level(g)) {
    if (level.size() < 2) continue;
    double lo = g.task(level.front()).flops;
    double hi = lo;
    for (const TaskId v : level) {
      lo = std::min(lo, g.task(v).flops);
      hi = std::max(hi, g.task(v).flops);
    }
    EXPECT_LE(hi / lo, 1.3);  // +-10% jitter around a shared reference
  }
}

TEST(RandomDag, IrregularTasksAreIndependentlySampled) {
  Rng rng(10);
  const Ptg g = make_random_ptg(params_with(90, 0.8, 0.8, 0.5, 2), rng);
  // With independent sampling, at least one level must have widely
  // differing work.
  bool diverse = false;
  for (const auto& level : tasks_by_level(g)) {
    if (level.size() < 3) continue;
    double lo = g.task(level.front()).flops;
    double hi = lo;
    for (const TaskId v : level) {
      lo = std::min(lo, g.task(v).flops);
      hi = std::max(hi, g.task(v).flops);
    }
    if (hi / lo > 2.0) diverse = true;
  }
  EXPECT_TRUE(diverse);
}

TEST(RandomDag, DeterministicGivenSeed) {
  Rng rng1(11);
  Rng rng2(11);
  const Ptg a = make_random_ptg(params_with(50, 0.5, 0.2, 0.8, 2), rng1);
  const Ptg b = make_random_ptg(params_with(50, 0.5, 0.2, 0.8, 2), rng2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (TaskId v = 0; v < a.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(a.task(v).flops, b.task(v).flops);
  }
}

TEST(RandomDag, RejectsBadParameters) {
  Rng rng(12);
  EXPECT_THROW((void)make_random_ptg(params_with(0, 0.5, 0.5, 0.5, 0), rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_random_ptg(params_with(10, 0.0, 0.5, 0.5, 0), rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_random_ptg(params_with(10, 1.5, 0.5, 0.5, 0), rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_random_ptg(params_with(10, 0.5, -0.1, 0.5, 0), rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_random_ptg(params_with(10, 0.5, 0.5, 0.0, 0), rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_random_ptg(params_with(10, 0.5, 0.5, 0.5, -1), rng),
               std::invalid_argument);
}

TEST(ComplexitySampler, PatternFormulas) {
  EXPECT_DOUBLE_EQ(pattern_flops(FlopPattern::Linear, 1000.0, 64.0), 64000.0);
  EXPECT_DOUBLE_EQ(pattern_flops(FlopPattern::LogLinear, 1024.0, 2.0),
                   2.0 * 1024.0 * 10.0);
  EXPECT_DOUBLE_EQ(pattern_flops(FlopPattern::MatMul, 1e6, 999.0), 1e9);
  EXPECT_THROW((void)pattern_flops(FlopPattern::Linear, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)pattern_flops(FlopPattern::Linear, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ComplexitySampler, RespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    Task t;
    assign_random_complexity(t, rng);
    EXPECT_GE(t.data_size, 1e5);
    EXPECT_LE(t.data_size, 125e6);  // paper's 1 GB bound
    EXPECT_GE(t.alpha, 0.0);
    EXPECT_LE(t.alpha, 0.25);
    EXPECT_GT(t.flops, 0.0);
    // flops is at most max-iteration log-linear work or d^1.5.
    EXPECT_LE(t.flops,
              std::max(512.0 * t.data_size * std::log2(t.data_size),
                       std::pow(t.data_size, 1.5)) *
                  (1.0 + 1e-9));
  }
}

TEST(ComplexitySampler, RejectsBadBounds) {
  Rng rng(14);
  Task t;
  ComplexityParams p;
  p.min_data = 10.0;
  p.max_data = 1.0;
  EXPECT_THROW(assign_random_complexity(t, rng, p), std::invalid_argument);
}

}  // namespace
}  // namespace ptgsched
