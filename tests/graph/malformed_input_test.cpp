// Hostile-input corpus for the JSON loaders: every entry is a malformed
// document paired with the error (and offending key) the loader must
// raise. Guards the hardening of ptg_from_json, Cluster::from_json and
// Schedule::from_json against NaN/negative costs, duplicate edges,
// self-loops, out-of-cluster placements and cycles.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "ptg/io.hpp"
#include "sched/schedule.hpp"
#include "support/error_context.hpp"

namespace ptgsched {
namespace {

struct MalformedPtg {
  const char* name;
  const char* json;
  const char* expect;  ///< Substring the LoadError's what() must contain.
};

TEST(MalformedInput, PtgCorpusRaisesLoadErrorNamingTheKey) {
  const std::vector<MalformedPtg> corpus = {
      {"negative flops",
       R"({"tasks": [{"flops": -1.0}]})", "tasks[0].flops"},
      {"zero flops",
       R"({"tasks": [{"flops": 0.0}]})", "tasks[0].flops"},
      {"negative data",
       R"({"tasks": [{"flops": 1.0, "data": -4.0}]})", "tasks[0].data"},
      {"alpha above one",
       R"({"tasks": [{"flops": 1.0, "alpha": 1.5}]})", "tasks[0].alpha"},
      {"alpha negative",
       R"({"tasks": [{"flops": 1.0}, {"flops": 2.0, "alpha": -0.1}]})",
       "tasks[1].alpha"},
      {"edge arity",
       R"({"tasks": [{"flops": 1.0}], "edges": [[0]]})", "edges[0]"},
      {"negative edge id",
       R"({"tasks": [{"flops": 1.0}], "edges": [[0, -1]]})", "edges[0]"},
      {"self loop",
       R"({"tasks": [{"flops": 1.0}], "edges": [[0, 0]]})", "edges[0]"},
      {"unknown endpoint",
       R"({"tasks": [{"flops": 1.0}], "edges": [[0, 7]]})", "edges[0]"},
      {"duplicate edge",
       R"({"tasks": [{"flops": 1.0}, {"flops": 1.0}],
           "edges": [[0, 1], [0, 1]]})",
       "edges[1]"},
      {"cycle",
       R"({"tasks": [{"flops": 1.0}, {"flops": 1.0}, {"flops": 1.0}],
           "edges": [[0, 1], [1, 2], [2, 0]]})",
       "cycle"},
      {"empty graph", R"({"tasks": []})", "empty"},
  };
  for (const MalformedPtg& entry : corpus) {
    SCOPED_TRACE(entry.name);
    try {
      (void)ptg_from_json(Json::parse(entry.json), "corpus.json");
      FAIL() << "expected LoadError";
    } catch (const LoadError& e) {
      EXPECT_EQ(e.path(), "corpus.json");
      EXPECT_NE(std::string(e.what()).find(entry.expect), std::string::npos)
          << "what(): " << e.what();
    }
  }
}

TEST(MalformedInput, ClusterCorpusRaisesPlatformError) {
  const std::vector<const char*> corpus = {
      R"({"processors": 0, "gflops": 1.0})",
      R"({"processors": -3, "gflops": 1.0})",
      R"({"processors": 2000000, "gflops": 1.0})",
      R"({"processors": 4, "gflops": 0.0})",
      R"({"processors": 4, "gflops": -2.5})",
  };
  for (const char* json : corpus) {
    SCOPED_TRACE(json);
    EXPECT_THROW((void)Cluster::from_json(Json::parse(json)), PlatformError);
  }
}

TEST(MalformedInput, HeteroClusterCorpusNamesTheOffendingKey) {
  // Hostile heterogeneous fields: every entry must raise a PlatformError
  // whose message pins the offending key, so a LoadError wrapping it
  // diagnoses the file without reading the source.
  const std::vector<std::pair<const char*, const char*>> corpus = {
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "speeds": [1.0, 0.0]})",
       "speeds[1]"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "speeds": [-1.0, 1.0]})",
       "speeds[0]"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "speeds": [1.0, 1.0, 1.0]})",
       "speeds"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "speeds": []})",
       "speeds"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "speeds": ["fast", "slow"]})",
       "speeds"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "comm_costs": [0.0, 1.0]})",
       "comm_costs"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "comm_costs": [0.0, 1.0, 2.0, 0.0]})",
       "comm_costs"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "comm_costs": [0.0, -1.0, -1.0, 0.0]})",
       "comm_costs[0][1]"},
      {R"({"name": "h", "processors": 2, "gflops": 1.0,
           "comm_costs": [0.5, 1.0, 1.0, 0.0]})",
       "comm_costs[0][0]"},
  };
  for (const auto& [json, key] : corpus) {
    SCOPED_TRACE(json);
    try {
      (void)Cluster::from_json(Json::parse(json));
      FAIL() << "expected PlatformError";
    } catch (const PlatformError& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "what(): " << e.what();
    }
  }
}

TEST(MalformedInput, ScheduleCorpusRaisesInvalidArgument) {
  const std::vector<std::pair<const char*, const char*>> corpus = {
      {"processor index beyond cluster",
       R"({"graph": "g", "processors": 2, "tasks":
           [{"task": 0, "start": 0.0, "finish": 1.0, "processors": [2]}]})"},
      {"negative processor index",
       R"({"graph": "g", "processors": 2, "tasks":
           [{"task": 0, "start": 0.0, "finish": 1.0, "processors": [-1]}]})"},
      {"duplicate processor in gang",
       R"({"graph": "g", "processors": 4, "tasks":
           [{"task": 0, "start": 0.0, "finish": 1.0, "processors": [1, 1]}]})"},
      {"finish before start",
       R"({"graph": "g", "processors": 2, "tasks":
           [{"task": 0, "start": 2.0, "finish": 1.0, "processors": [0]}]})"},
      {"negative start",
       R"({"graph": "g", "processors": 2, "tasks":
           [{"task": 0, "start": -1.0, "finish": 1.0, "processors": [0]}]})"},
      {"task placed twice",
       R"({"graph": "g", "processors": 2, "tasks":
           [{"task": 0, "start": 0.0, "finish": 1.0, "processors": [0]},
            {"task": 0, "start": 1.0, "finish": 2.0, "processors": [1]}]})"},
      {"empty processor set",
       R"({"graph": "g", "processors": 2, "tasks":
           [{"task": 0, "start": 0.0, "finish": 1.0, "processors": []}]})"},
      {"bad processor count",
       R"({"graph": "g", "processors": 0, "tasks": []})"},
  };
  for (const auto& [name, json] : corpus) {
    SCOPED_TRACE(name);
    EXPECT_THROW((void)Schedule::from_json(Json::parse(json)),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace ptgsched
