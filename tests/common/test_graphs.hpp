#pragma once
// Shared fixtures: small hand-built PTGs with known properties and a
// fixed-time execution model for exact schedule arithmetic in tests.

#include <map>

#include "model/execution_time.hpp"
#include "platform/cluster.hpp"
#include "ptg/graph.hpp"

namespace ptgsched::testutil {

inline Task simple_task(const std::string& name, double flops,
                        double alpha = 0.0) {
  Task t;
  t.name = name;
  t.flops = flops;
  t.alpha = alpha;
  t.data_size = flops;
  return t;
}

/// Chain a -> b -> c with flops 1, 2, 3 (in units of cluster speed).
inline Ptg chain3() {
  Ptg g("chain3");
  const TaskId a = g.add_task(simple_task("a", 1.0));
  const TaskId b = g.add_task(simple_task("b", 2.0));
  const TaskId c = g.add_task(simple_task("c", 3.0));
  g.add_edge(a, b);
  g.add_edge(b, c);
  return g;
}

/// Diamond: s -> {l, r} -> t. Flops: s=1, l=4, r=2, t=1.
inline Ptg diamond() {
  Ptg g("diamond");
  const TaskId s = g.add_task(simple_task("s", 1.0));
  const TaskId l = g.add_task(simple_task("l", 4.0));
  const TaskId r = g.add_task(simple_task("r", 2.0));
  const TaskId t = g.add_task(simple_task("t", 1.0));
  g.add_edge(s, l);
  g.add_edge(s, r);
  g.add_edge(l, t);
  g.add_edge(r, t);
  return g;
}

/// Fork-join: src -> {w0..w3} -> sink; each worker has flops 2.
inline Ptg fork_join(int workers = 4) {
  Ptg g("forkjoin");
  const TaskId src = g.add_task(simple_task("src", 1.0));
  const TaskId sink_placeholder = kInvalidTask;
  (void)sink_placeholder;
  std::vector<TaskId> ws;
  for (int i = 0; i < workers; ++i) {
    ws.push_back(g.add_task(simple_task("w" + std::to_string(i), 2.0)));
    g.add_edge(src, ws.back());
  }
  const TaskId sink = g.add_task(simple_task("sink", 1.0));
  for (const TaskId w : ws) g.add_edge(w, sink);
  return g;
}

/// Two independent chains of length 2 (multiple sources and sinks).
inline Ptg two_chains() {
  Ptg g("twochains");
  const TaskId a0 = g.add_task(simple_task("a0", 2.0));
  const TaskId a1 = g.add_task(simple_task("a1", 2.0));
  const TaskId b0 = g.add_task(simple_task("b0", 3.0));
  const TaskId b1 = g.add_task(simple_task("b1", 3.0));
  g.add_edge(a0, a1);
  g.add_edge(b0, b1);
  return g;
}

/// Execution-time model where T(v, p) = flops(v) regardless of p and
/// platform speed: makes schedule arithmetic exact in tests.
class FixedTimeModel final : public ExecutionTimeModel {
 public:
  double time(const Task& task, int p,
              const Cluster& cluster) const override {
    check_args(task, p, cluster);
    return task.flops;
  }
  std::string name() const override { return "fixed"; }
};

/// Model where T(v, p) = flops(v) / p (perfectly scalable), for testing
/// moldability effects with exact numbers.
class LinearSpeedupModel final : public ExecutionTimeModel {
 public:
  double time(const Task& task, int p,
              const Cluster& cluster) const override {
    check_args(task, p, cluster);
    return task.flops / static_cast<double>(p);
  }
  std::string name() const override { return "linear"; }
};

/// Unit-speed cluster with P processors.
inline Cluster unit_cluster(int p) { return Cluster("unit", p, 1e-9); }

}  // namespace ptgsched::testutil
