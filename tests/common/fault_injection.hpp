#pragma once
// Fault-injecting BatchEvaluator decorator for the robustness tests: makes
// the Nth fitness evaluation throw, stall, or come back +infinity, so the
// suite can prove that the ES / evaluation-engine stack isolates failures,
// keeps its thread pool reusable after an exception, and that elitism
// survives poisoned fitness values.

#include <chrono>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ea/evolution.hpp"

namespace ptgsched::testutil {

/// The exception thrown in kThrow mode (distinct type so tests can assert
/// it propagates unmangled through the ES driver).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

enum class FaultMode {
  kNone,      ///< Transparent pass-through.
  kThrow,     ///< Throw InjectedFault instead of evaluating the batch.
  kInfinity,  ///< Evaluate normally, then poison the Nth fitness with +inf.
  kStall,     ///< Sleep `stall` before evaluating the triggering batch.
};

/// Decorates an inner BatchEvaluator. The fault fires once, on the batch
/// containing the `trigger_at`-th individual evaluated (1-based, cumulative
/// across batches); every other batch passes through untouched.
class FaultInjectingEvaluator final : public BatchEvaluator {
 public:
  FaultInjectingEvaluator(BatchEvaluator& inner, FaultMode mode,
                          std::size_t trigger_at)
      : inner_(inner), mode_(mode), trigger_at_(trigger_at) {}

  void evaluate_batch(std::vector<Individual>& pool,
                      std::size_t begin) override {
    const std::size_t batch = pool.size() - begin;
    const bool fires = !fired_ && mode_ != FaultMode::kNone &&
                       count_ < trigger_at_ && count_ + batch >= trigger_at_;
    const std::size_t victim = begin + (trigger_at_ - count_ - 1);
    count_ += batch;
    if (fires) {
      fired_ = true;
      if (mode_ == FaultMode::kThrow) {
        throw InjectedFault("injected evaluator fault at evaluation #" +
                            std::to_string(trigger_at_));
      }
      if (mode_ == FaultMode::kStall) std::this_thread::sleep_for(stall);
    }
    inner_.evaluate_batch(pool, begin);
    if (fires && mode_ == FaultMode::kInfinity) {
      pool[victim].fitness = std::numeric_limits<double>::infinity();
    }
  }

  void on_selection(std::size_t generation, double best,
                    double worst) override {
    inner_.on_selection(generation, best, worst);
  }

  [[nodiscard]] std::size_t evaluations() const noexcept { return count_; }
  [[nodiscard]] bool fired() const noexcept { return fired_; }

  std::chrono::milliseconds stall{20};

 private:
  BatchEvaluator& inner_;
  FaultMode mode_;
  std::size_t trigger_at_;
  std::size_t count_ = 0;
  bool fired_ = false;
};

}  // namespace ptgsched::testutil
