// Tests for the fault-injecting simulation engine: fault-free bit-identity
// with the list scheduler, crash/slowdown semantics with exact arithmetic,
// reactive rescheduling, outage handling, and determinism.

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "../common/test_graphs.hpp"
#include "daggen/corpus.hpp"
#include "heuristics/allocation_heuristic.hpp"
#include "model/execution_time.hpp"
#include "sim/reschedule_policy.hpp"

namespace ptgsched {
namespace {

using testutil::FixedTimeModel;
using testutil::unit_cluster;

std::shared_ptr<const ProblemInstance> chain3_instance(int procs) {
  return ProblemInstance::create(
      std::make_shared<Ptg>(testutil::chain3()),
      std::make_shared<FixedTimeModel>(),
      std::make_shared<Cluster>(unit_cluster(procs)));
}

TEST(Simulation, FaultFreeReplayIsBitIdentical) {
  const Ptg g = irregular_corpus(40, 1, 5).front();
  const Cluster c = chti();
  const SyntheticModel model;
  const auto instance = ProblemInstance::borrow(g, model, c);

  const Allocation alloc = make_heuristic("mcpa")->allocate(*instance);
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);

  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const SimulationResult r =
      engine.run(schedule, alloc, FaultTrace(), policy);

  // Exact equality, not near-equality: epoch 0 is the schedule verbatim.
  EXPECT_EQ(r.metrics.degraded_makespan, schedule.makespan());
  EXPECT_EQ(r.metrics.ideal_makespan, schedule.makespan());
  EXPECT_DOUBLE_EQ(r.metrics.degradation_ratio(), 1.0);
  EXPECT_EQ(r.metrics.reschedules, 0u);
  EXPECT_EQ(r.metrics.tasks_killed, 0u);
  EXPECT_EQ(r.metrics.work_lost, 0.0);
  EXPECT_TRUE(r.metrics.completed);
  ASSERT_EQ(r.epochs.size(), 1u);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(r.completion_times[v], schedule.placement(v).finish);
  }
}

TEST(Simulation, CrashKillsRunningTaskAndReschedules) {
  // chain3 (a=1, b=2, c=3 seconds) on two processors, one proc per task:
  // a on p0 [0,1], b on p1 [1,3], c [3,6]. Crash b's processor at t=2:
  // b loses 1 proc-second, the residual {b, c} restarts on the survivor
  // at the barrier (t=2): b [2,4], c [4,7].
  const auto instance = chain3_instance(2);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  ASSERT_EQ(schedule.makespan(), 6.0);
  const int b_proc = schedule.placement(1).processors.front();

  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const FaultTrace trace({{2.0, b_proc, FaultKind::kCrash, 1.0, 0.0}});
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  EXPECT_TRUE(r.metrics.completed);
  EXPECT_EQ(r.metrics.crashes, 1u);
  EXPECT_EQ(r.metrics.tasks_killed, 1u);
  EXPECT_EQ(r.metrics.work_lost, 1.0);
  EXPECT_EQ(r.metrics.reschedules, 1u);
  EXPECT_EQ(r.metrics.degraded_makespan, 7.0);
  ASSERT_EQ(r.epochs.size(), 2u);
  EXPECT_EQ(r.epochs[1].start, 2.0);
  EXPECT_EQ(r.epochs[1].usable_processors, 1u);
  EXPECT_EQ(r.epochs[1].tasks, 2u);
  EXPECT_EQ(r.epochs[1].policy, "restart");
}

TEST(Simulation, CrashOfIdleProcessorKillsNothing) {
  // Crash the processor where only the *pending* task c would have run:
  // nothing is killed, b drains to its finish (t=3), and c is rescheduled
  // on the survivor — same makespan as the ideal schedule.
  const auto instance = chain3_instance(2);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  const int b_proc = schedule.placement(1).processors.front();
  const int other = 1 - b_proc;

  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const FaultTrace trace({{2.0, other, FaultKind::kCrash, 1.0, 0.0}});
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  EXPECT_TRUE(r.metrics.completed);
  EXPECT_EQ(r.metrics.tasks_killed, 0u);
  EXPECT_EQ(r.metrics.work_lost, 0.0);
  EXPECT_EQ(r.metrics.reschedules, 1u);
  EXPECT_EQ(r.metrics.degraded_makespan, 6.0);
}

TEST(Simulation, SlowdownStretchesInFlightWorkAndRecovers) {
  // Single processor: a [0,1], b [1,3], c [3,6]. Slowdown at t=2 with
  // factor 2 stretches b's remaining second to two (finish 4); the
  // recovery at t=3 lands inside the drain window, so the processor is
  // usable again at the barrier and c runs [4,7].
  const auto instance = chain3_instance(1);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  ASSERT_EQ(schedule.makespan(), 6.0);

  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const FaultTrace trace({
      {2.0, 0, FaultKind::kSlowdown, 2.0, 1.0},
      {3.0, 0, FaultKind::kRecovery, 1.0, 0.0},
  });
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  EXPECT_TRUE(r.metrics.completed);
  EXPECT_EQ(r.metrics.slowdowns, 1u);
  EXPECT_EQ(r.metrics.recoveries, 1u);
  EXPECT_EQ(r.metrics.tasks_killed, 0u);
  EXPECT_EQ(r.metrics.stretch_seconds, 1.0);
  EXPECT_EQ(r.metrics.reschedules, 1u);
  EXPECT_EQ(r.metrics.degraded_makespan, 7.0);
  EXPECT_EQ(r.completion_times[1], 4.0);
}

TEST(Simulation, IdlesThroughFullOutageUntilRecovery) {
  // Slowdown at t=0.5 (factor 2, recovery at 2.5) on the only processor:
  // a stretches to 1.5, then the cluster has zero usable processors until
  // the recovery — the residual {b, c} starts at t=2.5.
  const auto instance = chain3_instance(1);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);

  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const FaultTrace trace({
      {0.5, 0, FaultKind::kSlowdown, 2.0, 2.0},
      {2.5, 0, FaultKind::kRecovery, 1.0, 0.0},
  });
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  EXPECT_TRUE(r.metrics.completed);
  EXPECT_EQ(r.metrics.recoveries, 1u);
  EXPECT_EQ(r.completion_times[0], 1.5);
  ASSERT_EQ(r.epochs.size(), 2u);
  EXPECT_EQ(r.epochs[1].start, 2.5);
  EXPECT_EQ(r.metrics.degraded_makespan, 7.5);
}

TEST(Simulation, AllProcessorsDeadEndsIncomplete) {
  const auto instance = chain3_instance(1);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);

  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const FaultTrace trace({{0.5, 0, FaultKind::kCrash, 1.0, 0.0}});
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  EXPECT_FALSE(r.metrics.completed);
  EXPECT_TRUE(std::isinf(r.metrics.degraded_makespan));
  EXPECT_TRUE(std::isinf(r.metrics.degradation_ratio()));
  EXPECT_EQ(r.metrics.tasks_killed, 1u);
  EXPECT_EQ(r.metrics.work_lost, 0.5);
}

TEST(Simulation, RescheduleLatencyDelaysTheNextEpoch) {
  const auto instance = chain3_instance(2);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  const int b_proc = schedule.placement(1).processors.front();

  SimulationConfig cfg;
  cfg.reschedule_latency_seconds = 0.5;
  SimulationEngine engine(instance, cfg);
  RestartSurvivorsPolicy policy;
  const FaultTrace trace({{2.0, b_proc, FaultKind::kCrash, 1.0, 0.0}});
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  ASSERT_EQ(r.epochs.size(), 2u);
  EXPECT_EQ(r.epochs[1].start, 2.5);
  EXPECT_EQ(r.metrics.degraded_makespan, 7.5);
}

TEST(Simulation, DeterministicAcrossRepeatedRuns) {
  const Ptg g = irregular_corpus(30, 1, 9).front();
  const Cluster c = unit_cluster(6);
  const FixedTimeModel model;
  const auto instance = ProblemInstance::borrow(g, model, c);
  const Allocation alloc = make_heuristic("mcpa")->allocate(*instance);

  FaultModelConfig fcfg;
  fcfg.crash_rate = 1.0;
  fcfg.slowdown_rate = 2.0;
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  const FaultTrace trace =
      generate_fault_trace(fcfg, c, schedule.makespan(), 31);

  SimulationConfig cfg;
  cfg.seed = 17;
  const auto run_once = [&] {
    SimulationEngine engine(instance, cfg);
    HeuristicReschedulePolicy policy("mcpa");
    SimulationResult r = engine.run(schedule, alloc, trace, policy);
    r.metrics.policy_wall_seconds = 0.0;  // wall telemetry, not simulated
    return r.to_json().dump(0);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, SimulateAllocationMatchesExplicitScheduleRun) {
  const auto instance = chain3_instance(2);
  const Allocation alloc = {1, 1, 1};
  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;
  const SimulationResult r =
      engine.simulate_allocation(alloc, FaultTrace(), policy);
  ListScheduler mapper(instance);
  EXPECT_EQ(r.metrics.degraded_makespan, mapper.makespan(alloc));
}

TEST(Simulation, RejectsMalformedInputs) {
  const auto instance = chain3_instance(2);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  SimulationEngine engine(instance);
  RestartSurvivorsPolicy policy;

  // Trace naming a processor outside the cluster.
  const FaultTrace foreign({{1.0, 7, FaultKind::kCrash, 1.0, 0.0}});
  EXPECT_THROW((void)engine.run(schedule, alloc, foreign, policy),
               std::invalid_argument);
  // Allocation wider than the cluster.
  EXPECT_THROW((void)engine.run(schedule, {3, 1, 1}, FaultTrace(), policy),
               GraphError);
  // Null instance.
  EXPECT_THROW(SimulationEngine(nullptr), std::invalid_argument);
}

TEST(ResidualProblem, PrunesCompletedTasksAndRemapsIds) {
  const Ptg g = testutil::diamond();  // s -> {l, r} -> t
  const Cluster c = unit_cluster(4);
  const FixedTimeModel model;
  const auto instance = ProblemInstance::borrow(g, model, c);

  const std::vector<bool> completed = {true, false, false, false};
  const ResidualProblem residual =
      instance->residual(completed, std::make_shared<Cluster>(unit_cluster(2)));
  ASSERT_NE(residual.instance, nullptr);
  EXPECT_EQ(residual.instance->num_tasks(), 3u);
  EXPECT_EQ(residual.instance->num_processors(), 2);
  ASSERT_EQ(residual.to_base.size(), 3u);
  // Edges out of the completed source are satisfied dependencies; only
  // l -> t and r -> t survive.
  EXPECT_EQ(residual.instance->graph().num_edges(), 2u);
  for (std::size_t r = 0; r < residual.to_base.size(); ++r) {
    EXPECT_EQ(residual.from_base[residual.to_base[r]],
              static_cast<TaskId>(r));
  }
  EXPECT_EQ(residual.from_base[0], kInvalidTask);

  // All tasks completed: no residual instance at all.
  const ResidualProblem empty = instance->residual(
      {true, true, true, true}, std::make_shared<Cluster>(unit_cluster(2)));
  EXPECT_EQ(empty.instance, nullptr);
  EXPECT_TRUE(empty.to_base.empty());
}

TEST(Simulation, EmtsPolicySmoke) {
  // The budgeted EMTS policy on a tiny residual problem: just verify it
  // produces a valid completed run and at least one reschedule.
  const auto instance = chain3_instance(2);
  const Allocation alloc = {1, 1, 1};
  ListScheduler mapper(instance);
  const Schedule schedule = mapper.build_schedule(alloc);
  const int b_proc = schedule.placement(1).processors.front();

  SimulationConfig cfg;
  cfg.seed = 5;
  SimulationEngine engine(instance, cfg);
  EmtsConfig ecfg = emts5_config();
  ecfg.threads = 1;
  EmtsReschedulePolicy policy(ecfg);
  const FaultTrace trace({{2.0, b_proc, FaultKind::kCrash, 1.0, 0.0}});
  const SimulationResult r = engine.run(schedule, alloc, trace, policy);

  EXPECT_TRUE(r.metrics.completed);
  EXPECT_EQ(r.metrics.reschedules, 1u);
  EXPECT_GT(r.metrics.degraded_makespan, 0.0);
  EXPECT_GE(r.metrics.degraded_makespan, r.metrics.ideal_makespan);
}

TEST(ReschedulePolicy, FactoryNamesAndErrors) {
  for (const std::string& name : reschedule_policy_names()) {
    const auto policy = make_reschedule_policy(name);
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW((void)make_reschedule_policy("no-such-policy"),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptgsched
