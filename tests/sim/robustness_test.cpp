// Tests for the robustness experiment unit: determinism of the fault
// trace and reschedule decisions under a fixed seed, JSON round trips
// used by the checkpoint journal, aggregation, and CSV output.

#include "exp/robustness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "daggen/corpus.hpp"
#include "model/execution_time.hpp"
#include "sim/reschedule_policy.hpp"

namespace ptgsched {
namespace {

std::shared_ptr<const ProblemInstance> small_instance(std::uint64_t seed) {
  return ProblemInstance::create(
      std::make_shared<Ptg>(irregular_corpus(30, 1, seed).front()),
      std::make_shared<SyntheticModel>(),
      std::make_shared<Cluster>("c", 8, 1.0));
}

/// Resume-comparable form: policy_wall_seconds is wall-clock telemetry and
/// legitimately varies between runs, so comparisons zero it first.
std::string comparable(RobustnessUnitResult u) {
  for (PolicyOutcome& p : u.outcomes) p.policy_wall_seconds = 0.0;
  return robustness_unit_to_json(u).dump(0);
}

RobustnessOptions busy_options() {
  RobustnessOptions o;
  o.faults.crash_rate = 1.0;
  o.faults.slowdown_rate = 2.0;
  o.policies = {"restart", "mcpa"};
  o.threads = 1;
  return o;
}

TEST(RobustnessUnit, DeterministicUnderFixedSeed) {
  const auto instance = small_instance(3);
  const RobustnessOptions options = busy_options();
  const RobustnessUnitResult a =
      run_robustness_unit(instance, options, "irregular", "c", 0, 42);
  const RobustnessUnitResult b =
      run_robustness_unit(instance, options, "irregular", "c", 0, 42);
  // policy_wall_seconds is wall-clock telemetry; everything else must be
  // bit-identical — compare through the resume-comparable JSON form.
  EXPECT_EQ(comparable(a), comparable(b));
}

TEST(RobustnessUnit, DifferentSeedsChangeTheTrace) {
  const auto instance = small_instance(3);
  const RobustnessOptions options = busy_options();
  const RobustnessUnitResult a =
      run_robustness_unit(instance, options, "irregular", "c", 0, 42);
  const RobustnessUnitResult b =
      run_robustness_unit(instance, options, "irregular", "c", 0, 43);
  EXPECT_NE(comparable(a), comparable(b));
}

TEST(RobustnessUnit, OnePolicyOutcomePerRequestedPolicy) {
  const auto instance = small_instance(5);
  const RobustnessOptions options = busy_options();
  const RobustnessUnitResult r =
      run_robustness_unit(instance, options, "irregular", "c", 2, 7);
  ASSERT_EQ(r.outcomes.size(), options.policies.size());
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    EXPECT_EQ(r.outcomes[i].policy, options.policies[i]);
    if (r.outcomes[i].completed) {
      EXPECT_GE(r.outcomes[i].degraded_makespan, r.ideal_makespan);
      EXPECT_GE(r.outcomes[i].degradation_ratio, 1.0);
    }
  }
  EXPECT_GT(r.ideal_makespan, 0.0);
  EXPECT_EQ(r.cls, "irregular");
  EXPECT_EQ(r.platform, "c");
  EXPECT_EQ(r.index, 2u);
}

TEST(RobustnessUnit, FaultFreeModelYieldsUnitRatio) {
  const auto instance = small_instance(5);
  RobustnessOptions options;  // zero crash/slowdown rates: empty trace
  options.policies = {"restart"};
  const RobustnessUnitResult r =
      run_robustness_unit(instance, options, "irregular", "c", 0, 1);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.trace_events, 0u);
  EXPECT_EQ(r.outcomes[0].degraded_makespan, r.ideal_makespan);
  EXPECT_DOUBLE_EQ(r.outcomes[0].degradation_ratio, 1.0);
  EXPECT_EQ(r.outcomes[0].reschedules, 0u);
}

TEST(RobustnessUnit, JsonRoundTripIsExact) {
  const auto instance = small_instance(9);
  const RobustnessUnitResult r =
      run_robustness_unit(instance, busy_options(), "irregular", "c", 1, 11);
  const RobustnessUnitResult back =
      robustness_unit_from_json(robustness_unit_to_json(r));
  EXPECT_EQ(robustness_unit_to_json(back).dump(0),
            robustness_unit_to_json(r).dump(0));
  ASSERT_EQ(back.outcomes.size(), r.outcomes.size());
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    EXPECT_EQ(back.outcomes[i].degraded_makespan,
              r.outcomes[i].degraded_makespan);
    EXPECT_EQ(back.outcomes[i].degradation_ratio,
              r.outcomes[i].degradation_ratio);
  }
}

TEST(RobustnessUnit, FailedRunRatioSurvivesTheRoundTrip) {
  RobustnessUnitResult r;
  r.cls = "x";
  r.platform = "c";
  r.ideal_makespan = 1.0;
  PolicyOutcome failed;
  failed.policy = "restart";
  failed.completed = false;
  failed.degradation_ratio = std::numeric_limits<double>::infinity();
  r.outcomes.push_back(failed);
  const RobustnessUnitResult back =
      robustness_unit_from_json(robustness_unit_to_json(r));
  ASSERT_EQ(back.outcomes.size(), 1u);
  EXPECT_FALSE(back.outcomes[0].completed);
  EXPECT_TRUE(std::isinf(back.outcomes[0].degradation_ratio));
}

TEST(RobustnessAggregate, GroupsByClassAndPolicy) {
  const auto instance = small_instance(13);
  const RobustnessOptions options = busy_options();
  std::vector<RobustnessUnitResult> units;
  for (std::size_t i = 0; i < 2; ++i) {
    units.push_back(
        run_robustness_unit(instance, options, "irregular", "c", i, 100 + i));
  }
  const Json agg = robustness_aggregate_json(units);
  // One aggregate entry per (class, policy) pair.
  ASSERT_TRUE(agg.is_array());
  EXPECT_EQ(agg.as_array().size(), options.policies.size());
  for (const Json& row : agg.as_array()) {
    EXPECT_EQ(row.at("class").as_string(), "irregular");
    EXPECT_EQ(row.at("runs").as_int(), 2);
  }
}

TEST(RobustnessCsv, OneRowPerUnitPolicy) {
  const auto instance = small_instance(17);
  const RobustnessOptions options = busy_options();
  std::vector<RobustnessUnitResult> units = {
      run_robustness_unit(instance, options, "irregular", "c", 0, 5)};
  const std::string path = "robustness_test_out.csv";
  write_robustness_csv(units, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t rows = 0;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_NE(line.find("degradation_ratio"), std::string::npos);
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, options.policies.size());
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptgsched
