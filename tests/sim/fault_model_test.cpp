// Tests for the fault model: deterministic seed-derived trace generation,
// validation, the crash cap, and the JSON round trip.

#include "sim/fault_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ptgsched {
namespace {

FaultModelConfig busy_config() {
  FaultModelConfig c;
  c.crash_rate = 1.0;
  c.slowdown_rate = 3.0;
  return c;
}

TEST(FaultTrace, SortsAndValidates) {
  std::vector<FaultEvent> events = {
      {5.0, 1, FaultKind::kCrash, 1.0, 0.0},
      {2.0, 0, FaultKind::kSlowdown, 2.0, 1.0},
      {3.0, 0, FaultKind::kRecovery, 1.0, 0.0},
  };
  const FaultTrace trace(std::move(events));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      trace.events().begin(), trace.events().end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; }));
  EXPECT_EQ(trace.count(FaultKind::kCrash), 1u);
  EXPECT_EQ(trace.count(FaultKind::kSlowdown), 1u);
  EXPECT_EQ(trace.count(FaultKind::kRecovery), 1u);
}

TEST(FaultTrace, RejectsMalformedEvents) {
  EXPECT_THROW(FaultTrace({{-1.0, 0, FaultKind::kCrash, 1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(FaultTrace({{1.0, -2, FaultKind::kCrash, 1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(FaultTrace({{1.0, 0, FaultKind::kSlowdown, 0.5, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(FaultTrace({{1.0, 0, FaultKind::kSlowdown, 2.0, -1.0}}),
               std::invalid_argument);
}

TEST(FaultModel, SameSeedSameTrace) {
  const Cluster c("c", 8, 1.0);
  const FaultTrace a = generate_fault_trace(busy_config(), c, 100.0, 7);
  const FaultTrace b = generate_fault_trace(busy_config(), c, 100.0, 7);
  EXPECT_EQ(a.to_json().dump(0), b.to_json().dump(0));
  EXPECT_GT(a.size(), 0u);
}

TEST(FaultModel, DifferentSeedDifferentTrace) {
  const Cluster c("c", 8, 1.0);
  const FaultTrace a = generate_fault_trace(busy_config(), c, 100.0, 7);
  const FaultTrace b = generate_fault_trace(busy_config(), c, 100.0, 8);
  EXPECT_NE(a.to_json().dump(0), b.to_json().dump(0));
}

TEST(FaultModel, PerProcessorStreamsAreStableAcrossClusterSize) {
  // Growing the cluster must not perturb the events of the processors that
  // already existed (per-processor sub-streams).
  FaultModelConfig cfg = busy_config();
  cfg.max_crashes = 1'000;  // clamped to P - 1 internally; avoid the cap
  const FaultTrace small =
      generate_fault_trace(cfg, Cluster("c", 4, 1.0), 100.0, 11);
  const FaultTrace big =
      generate_fault_trace(cfg, Cluster("c", 8, 1.0), 100.0, 11);
  std::vector<FaultEvent> small_p0;
  for (const FaultEvent& e : small.events()) {
    if (e.processor < 4) small_p0.push_back(e);
  }
  std::vector<FaultEvent> big_p0;
  for (const FaultEvent& e : big.events()) {
    if (e.processor < 4) big_p0.push_back(e);
  }
  ASSERT_EQ(small_p0.size(), big_p0.size());
  for (std::size_t i = 0; i < small_p0.size(); ++i) {
    EXPECT_EQ(small_p0[i].time, big_p0[i].time);
    EXPECT_EQ(small_p0[i].processor, big_p0[i].processor);
    EXPECT_EQ(small_p0[i].kind, big_p0[i].kind);
  }
}

TEST(FaultModel, CrashCapLeavesSurvivors) {
  FaultModelConfig cfg;
  cfg.crash_rate = 50.0;  // every processor would crash almost surely
  const Cluster c("c", 6, 1.0);
  const FaultTrace trace = generate_fault_trace(cfg, c, 100.0, 3);
  EXPECT_LE(trace.count(FaultKind::kCrash), 5u);  // default cap: P - 1
}

TEST(FaultModel, ExplicitCrashCapHonored) {
  FaultModelConfig cfg;
  cfg.crash_rate = 50.0;
  cfg.max_crashes = 2;
  const FaultTrace trace =
      generate_fault_trace(cfg, Cluster("c", 6, 1.0), 100.0, 3);
  EXPECT_LE(trace.count(FaultKind::kCrash), 2u);
}

TEST(FaultModel, NoSlowdownAfterCrashOnSameProcessor) {
  const FaultTrace trace =
      generate_fault_trace(busy_config(), Cluster("c", 8, 1.0), 100.0, 21);
  std::vector<double> crash_time(8, 1e300);
  for (const FaultEvent& e : trace.events()) {
    if (e.kind == FaultKind::kCrash) {
      crash_time[static_cast<std::size_t>(e.processor)] = e.time;
    }
  }
  for (const FaultEvent& e : trace.events()) {
    if (e.kind != FaultKind::kCrash) {
      EXPECT_LT(e.time, crash_time[static_cast<std::size_t>(e.processor)]);
    }
  }
}

TEST(FaultModel, JsonRoundTripIsExact) {
  const FaultTrace trace =
      generate_fault_trace(busy_config(), Cluster("c", 5, 1.0), 50.0, 99);
  const FaultTrace back = FaultTrace::from_json(trace.to_json());
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back.events()[i].time, trace.events()[i].time);
    EXPECT_EQ(back.events()[i].processor, trace.events()[i].processor);
    EXPECT_EQ(back.events()[i].kind, trace.events()[i].kind);
    EXPECT_EQ(back.events()[i].factor, trace.events()[i].factor);
    EXPECT_EQ(back.events()[i].duration, trace.events()[i].duration);
  }
}

TEST(FaultModel, ConfigJsonRoundTrip) {
  FaultModelConfig cfg = busy_config();
  cfg.max_crashes = 3;
  cfg.slowdown_factor_min = 1.25;
  const FaultModelConfig back = FaultModelConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.crash_rate, cfg.crash_rate);
  EXPECT_EQ(back.slowdown_rate, cfg.slowdown_rate);
  EXPECT_EQ(back.slowdown_factor_min, cfg.slowdown_factor_min);
  EXPECT_EQ(back.max_crashes, cfg.max_crashes);
}

TEST(FaultModel, RejectsBadArguments) {
  const Cluster c("c", 2, 1.0);
  EXPECT_THROW((void)generate_fault_trace({}, c, 0.0, 1),
               std::invalid_argument);
  FaultModelConfig bad;
  bad.crash_rate = -1.0;
  EXPECT_THROW((void)generate_fault_trace(bad, c, 10.0, 1),
               std::invalid_argument);
  bad = FaultModelConfig{};
  bad.slowdown_factor_min = 0.5;
  EXPECT_THROW((void)generate_fault_trace(bad, c, 10.0, 1),
               std::invalid_argument);
  bad = FaultModelConfig{};
  bad.recovery_max = 0.01;  // below recovery_min
  EXPECT_THROW((void)generate_fault_trace(bad, c, 10.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptgsched
