// moldable_job_submission: the paper's motivating scenario (Section II-A):
// "To execute a PTG on a cluster, the user first requests a time slot from
// the local job scheduler (e.g., PBS). After the application has been
// granted several processors, the PTG scheduler computes a schedule while
// trying to minimize the overall execution time of the job."
//
// This example answers the question that scenario raises: HOW MANY
// processors should the user request? It sweeps partition sizes P' <= P,
// schedules the PTG with EMTS on each partition, and combines the
// resulting makespan with a simple queue-wait model (waiting grows with
// the requested fraction of the machine) to find the request minimizing
// the total response time.

#include <cstdio>

#include "daggen/corpus.hpp"
#include "emts/emts.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli("moldable_job_submission",
                "Sweep partition sizes for a PTG job and pick the request "
                "that minimizes queue wait + makespan.");
  cli.add_option("platform", "chti | grelon", "grelon");
  cli.add_option("model", "model1 | model2", "model2");
  cli.add_option("class", "fft | strassen | layered | irregular",
                 "irregular");
  cli.add_option("tasks", "Tasks for the DAGGEN classes", "100");
  cli.add_option("seed", "Corpus/EMTS seed", "42");
  cli.add_option("base-wait", "Queue wait for a 1-processor request [s]",
                 "60");
  cli.add_option("wait-exponent",
                 "Queue wait = base / (1 - 0.95 * P'/P)^exponent", "2");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const Cluster full = platform_by_name(cli.get("platform"));
    const auto model = make_model(cli.get("model"));
    const auto graphs = corpus_by_name(
        cli.get("class"), static_cast<int>(cli.get_int("tasks")), 1,
        cli.get_u64("seed"));
    const Ptg& g = graphs.front();

    const double base_wait = cli.get_double("base-wait");
    const double exponent = cli.get_double("wait-exponent");
    const int P = full.num_processors();

    std::printf("job '%s' (%zu tasks, %.3g GFLOP) on %s, model %s\n\n",
                g.name().c_str(), g.num_tasks(), g.total_flops() / 1e9,
                full.name().c_str(), model->name().c_str());

    std::vector<std::vector<std::string>> table;
    table.push_back({"request P'", "est. wait [s]", "makespan [s]",
                     "response [s]", "note"});
    double best_response = 0.0;
    int best_request = 0;
    // Sweep a ladder of partition sizes (powers of two plus the machine).
    std::vector<int> requests;
    for (int p = 1; p < P; p *= 2) requests.push_back(p);
    requests.push_back(P);
    for (const int request : requests) {
      const Cluster partition(full.name() + "-part", request, full.gflops());
      EmtsConfig cfg = emts5_config();
      cfg.seed = cli.get_u64("seed");
      const EmtsResult r = Emts(cfg).schedule(g, *model, partition);
      // Larger slices of the machine queue longer (crude backfilling-era
      // model; the point is the tradeoff's shape, not its calibration).
      const double frac = static_cast<double>(request) / P;
      const double wait = base_wait / std::pow(1.0 - 0.95 * frac, exponent);
      const double response = wait + r.makespan;
      if (best_request == 0 || response < best_response) {
        best_response = response;
        best_request = request;
      }
      table.push_back({std::to_string(request), strfmt("%.1f", wait),
                       strfmt("%.2f", r.makespan),
                       strfmt("%.2f", response), ""});
    }
    for (auto& row : table) {
      if (row[0] == std::to_string(best_request)) row[4] = "<- request this";
    }
    std::fputs(render_table(table).c_str(), stdout);
    std::printf("\nrecommended request: %d of %d processors "
                "(response %.2f s)\n", best_request, P, best_response);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moldable_job_submission: %s\n", e.what());
    return 1;
  }
}
