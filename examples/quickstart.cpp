// Quickstart: schedule one FFT parallel task graph on the Grelon cluster
// with the baseline heuristics and EMTS, and print the resulting
// makespans plus an ASCII Gantt chart of the EMTS schedule.
//
//   ./examples/quickstart [--platform=grelon] [--model=model2]
//                         [--points=16] [--seed=7]

#include <cstdio>

#include "daggen/application_graphs.hpp"
#include "emts/emts.hpp"
#include "heuristics/allocation_heuristic.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/validate.hpp"
#include "support/cli.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli("quickstart",
                "Schedule an FFT PTG with MCPA/HCPA and EMTS, then compare.");
  cli.add_option("platform", "Cluster preset: chti | grelon", "grelon");
  cli.add_option("model", "Execution time model: model1 | model2 | downey",
                 "model2");
  cli.add_option("points", "FFT input points (power of two >= 2)", "16");
  cli.add_option("seed", "RNG seed", "7");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // 1. Build a workload: an FFT task graph with random task complexities.
    Rng rng(cli.get_u64("seed"));
    const Ptg g = make_fft_ptg(static_cast<int>(cli.get_int("points")), rng);
    const Cluster cluster = platform_by_name(cli.get("platform"));
    const auto model = make_model(cli.get("model"));

    std::printf("PTG '%s': %zu tasks, %zu edges, total %.3g GFLOP\n",
                g.name().c_str(), g.num_tasks(), g.num_edges(),
                g.total_flops() / 1e9);
    std::printf("Platform '%s': %d processors x %.1f GFLOPS, model '%s'\n\n",
                cluster.name().c_str(), cluster.num_processors(),
                cluster.gflops(), model->name().c_str());

    // 2. Baselines: allocation heuristic + list-scheduler mapping.
    ListScheduler mapper(g, cluster, *model);
    for (const char* name : {"one", "cpa", "hcpa", "mcpa"}) {
      const auto heuristic = make_heuristic(name);
      const Allocation alloc = heuristic->allocate(g, *model, cluster);
      std::printf("%-8s makespan %8.3f s\n", name, mapper.makespan(alloc));
    }

    // 3. EMTS: evolutionary optimization seeded with MCPA/HCPA/delta.
    EmtsConfig cfg = emts10_config();
    cfg.seed = cli.get_u64("seed");
    const Emts emts(cfg);
    const EmtsResult result = emts.schedule(g, *model, cluster);
    std::printf("%-8s makespan %8.3f s  (%zu evaluations, %.2f ms)\n\n",
                "emts10", result.makespan, result.es.evaluations,
                result.total_seconds * 1e3);

    // 4. The schedule is valid by construction; verify and show it.
    validate_schedule(result.schedule, g, result.best_allocation, *model,
                      cluster);
    const ScheduleMetrics metrics = compute_metrics(result.schedule, g);
    std::printf("EMTS schedule: utilization %.1f%%, mean allocation %.1f, "
                "max allocation %d\n\n",
                metrics.utilization * 100.0, metrics.mean_allocation,
                metrics.max_allocation);
    std::printf("%s\n", gantt_ascii(result.schedule).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
}
