// paper_campaign: reproduce the paper's whole evaluation section with one
// command. Runs the Figure-4 and Figure-5 comparisons, the Section V-B
// runtime measurements, and an optimality-gap analysis, then writes a JSON
// report plus per-instance CSVs.
//
//   ./examples/paper_campaign --instances=12 --out=campaign_out
//   ./examples/paper_campaign --full --out=campaign_full   # paper scale
//
// Campaigns are fault tolerant: every completed unit is journaled to
// <out>/campaign_checkpoint.json, SIGINT/SIGTERM stop the run cleanly at
// the next unit boundary, and --resume=<dir> continues an interrupted
// campaign, reproducing the uninterrupted report bit-for-bit (modulo the
// wall-clock times recorded while units actually ran).

#include <cstdio>

#include "exp/campaign.hpp"
#include "support/cancellation.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli("paper_campaign",
                "Run the full CLUSTER'11 evaluation campaign.");
  cli.add_option("instances", "Instances per class (0 = paper scale)", "12");
  cli.add_flag("full", "Paper-scale corpora (400 FFT / 100 Strassen / ...)");
  cli.add_option("seed", "Base seed", "42");
  cli.add_option("tasks", "DAGGEN task count", "100");
  cli.add_option("threads", "Fitness threads per EMTS run", "0");
  cli.add_option("heuristics",
                 "Comma-separated baseline heuristics compared against EMTS "
                 "(any heuristic_names() entry, e.g. mcpa,hcpa,heft,peft)",
                 "mcpa,hcpa");
  cli.add_flag("skip-emts10", "Skip the EMTS10 half of Figure 5");
  cli.add_option("out", "Output directory for JSON/CSV artifacts",
                 "campaign_out");
  cli.add_option("resume",
                 "Resume an interrupted campaign from this directory's "
                 "checkpoint journal (overrides --out)",
                 "");
  cli.add_option("deadline-seconds",
                 "Per-unit wall-clock deadline (0 = off)", "0");
  cli.add_option("max-retries",
                 "Extra attempts per failed unit (fresh derived seed)", "1");
  cli.add_option("retry-backoff-seconds",
                 "Base delay before unit retries; doubles per attempt with "
                 "deterministic jitter, capped by the deadline (0 = "
                 "immediate retry)",
                 "0");
  cli.add_flag("faults",
               "Run the robustness phase: fault-injected replay of "
               "heuristic schedules with reactive rescheduling");
  cli.add_option("crash-rate",
                 "Expected permanent crashes per processor over the "
                 "schedule horizon (with --faults)", "1.0");
  cli.add_option("slowdown-rate",
                 "Expected transient slowdowns per processor over the "
                 "horizon (with --faults)", "2.0");
  cli.add_option("reschedule-latency-seconds",
                 "Simulated seconds charged at every reschedule barrier",
                 "0");
  try {
    if (!cli.parse(argc, argv)) return 0;

    CampaignConfig cfg;
    cfg.instances = cli.get_flag("full")
                        ? 0
                        : static_cast<std::size_t>(cli.get_int("instances"));
    cfg.num_tasks = static_cast<int>(cli.get_int("tasks"));
    cfg.seed = cli.get_u64("seed");
    cfg.threads = static_cast<std::size_t>(cli.get_int("threads"));
    cfg.baselines.clear();
    for (const std::string& name : split(cli.get("heuristics"), ',')) {
      const std::string_view trimmed = trim(name);
      if (!trimmed.empty()) cfg.baselines.emplace_back(trimmed);
    }
    if (cfg.baselines.empty()) {
      std::fprintf(stderr, "paper_campaign: --heuristics must name at least "
                           "one baseline\n");
      return 1;
    }
    cfg.include_emts10 = !cli.get_flag("skip-emts10");
    cfg.output_dir = cli.get("out");
    cfg.unit_deadline_seconds = cli.get_double("deadline-seconds");
    cfg.max_retries = static_cast<int>(cli.get_int("max-retries"));
    cfg.retry_backoff_seconds = cli.get_double("retry-backoff-seconds");
    cfg.faults = cli.get_flag("faults");
    cfg.fault_model.crash_rate = cli.get_double("crash-rate");
    cfg.fault_model.slowdown_rate = cli.get_double("slowdown-rate");
    cfg.reschedule_latency_seconds =
        cli.get_double("reschedule-latency-seconds");
    if (!cli.get("resume").empty()) {
      cfg.output_dir = cli.get("resume");
      cfg.resume = true;
    }

    // Ctrl-C / SIGTERM request cooperative cancellation: the campaign stops
    // at the next unit boundary with the journal intact, so --resume can
    // pick up exactly where it left off.
    CancellationToken cancel;
    install_signal_cancellation(&cancel);
    cfg.cancel = &cancel;

    std::string last_phase;
    const Json report = run_campaign(
        cfg, [&](const std::string& phase, std::size_t done,
                 std::size_t total) {
          if (phase != last_phase) {
            if (!last_phase.empty()) std::fputc('\n', stderr);
            last_phase = phase;
          }
          if (done == total || done % 20 == 0) {
            std::fprintf(stderr, "\r%-12s [%zu/%zu]", phase.c_str(), done,
                         total);
            std::fflush(stderr);
          }
        });
    std::fputc('\n', stderr);
    install_signal_cancellation(nullptr);

    // Condensed human-readable summary; the full data is in the report.
    for (const char* section :
         {"fig4_model1_emts5", "fig5_model2_emts5", "fig5_model2_emts10"}) {
      if (!report.contains(section)) continue;
      std::printf("\n== %s (mean T_baseline / T_emts) ==\n", section);
      for (const Json& cell : report.at(section).as_array()) {
        std::printf("  %-10s %-7s vs %-5s : %.4f [%.4f, %.4f]\n",
                    cell.at("class").as_string().c_str(),
                    cell.at("platform").as_string().c_str(),
                    cell.at("baseline").as_string().c_str(),
                    cell.at("mean_ratio").as_double(),
                    cell.at("ci95_lo").as_double(),
                    cell.at("ci95_hi").as_double());
      }
    }
    if (report.contains("optimality_gap_emts5_model2_irregular_grelon")) {
      const Json& gap =
          report.at("optimality_gap_emts5_model2_irregular_grelon");
      std::printf("\nEMTS5 makespan / lower bound (irregular, grelon, "
                  "model2): mean %.3f, max %.3f over %lld instances\n",
                  gap.at("mean_makespan_over_lower_bound").as_double(),
                  gap.at("max").as_double(),
                  static_cast<long long>(gap.at("n").as_int()));
    }
    if (report.contains("robustness")) {
      const Json& rob = report.at("robustness");
      std::printf("\n== robustness over %lld fault-injected unit(s) "
                  "(mean degraded/ideal makespan) ==\n",
                  static_cast<long long>(rob.at("units").as_int()));
      for (const Json& row : rob.at("aggregates").as_array()) {
        std::printf("  %-10s %-8s : ratio %.4f (max %.4f), completed "
                    "%lld/%lld, %lld reschedule(s)\n",
                    row.at("class").as_string().c_str(),
                    row.at("policy").as_string().c_str(),
                    row.at("mean_degradation_ratio").as_double(),
                    row.at("max_degradation_ratio").as_double(),
                    static_cast<long long>(row.at("completed").as_int()),
                    static_cast<long long>(row.at("runs").as_int()),
                    static_cast<long long>(row.at("reschedules").as_int()));
      }
    }
    if (report.contains("failures") &&
        report.at("failures").size() > 0) {
      std::fprintf(stderr, "\n%zu unit(s) failed:\n",
                   report.at("failures").size());
      for (const Json& f : report.at("failures").as_array()) {
        std::fprintf(stderr, "  [%s] %s/%s #%lld after %lld attempt(s): %s\n",
                     f.at("kind").as_string().c_str(),
                     f.at("class").as_string().c_str(),
                     f.at("platform").as_string().c_str(),
                     static_cast<long long>(f.at("index").as_int()),
                     static_cast<long long>(f.at("attempts").as_int()),
                     f.at("message").as_string().c_str());
      }
    }
    if (report.at("cancelled").as_bool()) {
      std::fprintf(stderr,
                   "\ncampaign cancelled; completed units are journaled.\n"
                   "Resume with: paper_campaign --resume=%s\n",
                   cfg.output_dir.c_str());
      return 130;
    }
    std::printf("artifacts written to %s/\n", cfg.output_dir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "paper_campaign: %s\n", e.what());
    return 1;
  }
}
