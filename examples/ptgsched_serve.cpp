// ptgsched_serve: the scheduling daemon, as a binary.
//
// Runs ServeServer on a local socket until SIGINT/SIGTERM, which is
// routed through install_signal_cancellation into a graceful shutdown:
// in-flight requests are interrupted *without* terminal journal entries,
// so restarting the daemon on the same --journal re-runs them at their
// pinned tier and deterministic seed (see src/serve/server.hpp).
//
// Example session (one shell runs the daemon, another the client):
//
//   $ ptgsched_serve --socket /tmp/ptg.sock --journal /tmp/ptg.jsonl
//   $ serve_loadgen --socket /tmp/ptg.sock --clients 4 --requests 32

#include <cstdio>

#include "serve/server.hpp"
#include "support/cancellation.hpp"
#include "support/cli.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli("ptgsched_serve",
                "Run the PTG scheduling daemon on a local socket.");
  cli.add_option("socket", "AF_UNIX socket path", "/tmp/ptgsched.sock");
  cli.add_option("journal", "Crash-safe request journal path",
                 "/tmp/ptgsched.journal.jsonl");
  cli.add_option("capacity", "Admission queue bound", "64");
  cli.add_option("workers", "Scheduling worker threads", "2");
  cli.add_option("seed", "Base seed for per-request determinism", "1");
  cli.add_option("emts-budget",
                 "EMTS wall-clock budget per request [s]; 0 = none", "1");
  cli.add_option("deadline",
                 "Default per-request deadline [s]; 0 = none", "0");
  cli.add_option("max-attempts", "Execution attempts per request", "3");
  cli.add_option("p95-budget",
                 "Latency budget driving degradation [s]", "2");
  cli.add_option("pool-capacity", "Idle evaluation engines retained", "8");
  try {
    if (!cli.parse(argc, argv)) return 0;

    serve::ServeConfig cfg;
    cfg.socket_path = cli.get("socket");
    cfg.journal_path = cli.get("journal");
    cfg.queue_capacity = static_cast<std::size_t>(cli.get_int("capacity"));
    cfg.workers = static_cast<std::size_t>(cli.get_int("workers"));
    cfg.base_seed = cli.get_u64("seed");
    cfg.emts_budget_seconds = cli.get_double("emts-budget");
    cfg.default_deadline_seconds = cli.get_double("deadline");
    cfg.max_attempts = static_cast<int>(cli.get_int("max-attempts"));
    cfg.tiers.p95_budget_seconds = cli.get_double("p95-budget");
    cfg.engine_pool.capacity =
        static_cast<std::size_t>(cli.get_int("pool-capacity"));

    CancellationToken shutdown;
    install_signal_cancellation(&shutdown);
    cfg.shutdown = &shutdown;

    serve::ServeServer server(cfg);
    server.start();
    std::printf("ptgsched_serve: listening on %s (journal %s, "
                "%zu workers, queue %zu)\n",
                cfg.socket_path.c_str(), cfg.journal_path.c_str(),
                cfg.workers, cfg.queue_capacity);
    std::fflush(stdout);
    server.wait();
    install_signal_cancellation(nullptr);

    const serve::ServeCounters c = server.counters();
    std::printf("ptgsched_serve: stopped — submitted %llu, completed "
                "%llu, cancelled %llu, failed %llu, recovered %llu\n",
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.cancelled),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.recovered));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptgsched_serve: %s\n", e.what());
    return 1;
  }
}
