// ptgsched_serve: the scheduling daemon, as a binary.
//
// Runs ServeServer on a local socket until SIGINT/SIGTERM, which is
// routed through install_signal_cancellation into a graceful shutdown:
// in-flight requests are interrupted *without* terminal journal entries,
// so restarting the daemon on the same --journal re-runs them at their
// pinned tier and deterministic seed (see src/serve/server.hpp).
//
// Example session (one shell runs the daemon, another the client):
//
//   $ ptgsched_serve --socket /tmp/ptg.sock --journal /tmp/ptg.jsonl
//   $ serve_loadgen --socket /tmp/ptg.sock --clients 4 --requests 32

#include <cstdio>
#include <stdexcept>
#include <string>

#include "serve/server.hpp"
#include "support/cancellation.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace ptgsched;

namespace {

/// Parse --quotas: comma-separated `tenant=max_queued:max_in_flight:weight`
/// entries ("0" = unlimited for the caps), e.g.
/// `--quotas batch=8:4:0.5,interactive=0:0:2`.
void parse_quotas(const std::string& arg, serve::ServeConfig& cfg) {
  for (const std::string& entry : split(arg, ',')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("--quotas entry '" + entry +
                                  "' is not tenant=queued:in_flight:weight");
    }
    const std::vector<std::string> parts =
        split(std::string_view(entry).substr(eq + 1), ':');
    if (parts.size() != 3) {
      throw std::invalid_argument("--quotas entry '" + entry +
                                  "' needs queued:in_flight:weight");
    }
    serve::TenantQuota quota;
    quota.max_queued = std::stoull(parts[0]);
    quota.max_in_flight = std::stoull(parts[1]);
    quota.weight = std::stod(parts[2]);
    cfg.tenant_quotas[entry.substr(0, eq)] = quota;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ptgsched_serve",
                "Run the PTG scheduling daemon on a local socket.");
  cli.add_option("socket", "AF_UNIX socket path", "/tmp/ptgsched.sock");
  cli.add_option("journal", "Crash-safe request journal path",
                 "/tmp/ptgsched.journal.jsonl");
  cli.add_option("capacity", "Admission queue bound", "64");
  cli.add_option("workers", "Scheduling worker threads", "2");
  cli.add_option("seed", "Base seed for per-request determinism", "1");
  cli.add_option("emts-budget",
                 "EMTS wall-clock budget per request [s]; 0 = none", "1");
  cli.add_option("deadline",
                 "Default per-request deadline [s]; 0 = none", "0");
  cli.add_option("max-attempts", "Execution attempts per request", "3");
  cli.add_option("p95-budget",
                 "Latency budget driving degradation [s]", "2");
  cli.add_option("pool-capacity", "Idle evaluation engines retained", "8");
  cli.add_option("rotate-bytes",
                 "Journal rotation watermark [bytes]; 0 = never", "0");
  cli.add_option("rotate-records",
                 "Journal rotation watermark [records]; 0 = never", "0");
  cli.add_option("tenant-queued",
                 "Default per-tenant queued cap; 0 = unlimited", "0");
  cli.add_option("tenant-in-flight",
                 "Default per-tenant in-flight cap; 0 = unlimited", "0");
  cli.add_option("quotas",
                 "Per-tenant overrides: tenant=queued:in_flight:weight"
                 " entries, comma-separated", "");
  cli.add_flag("fair",
               "Weighted-fair (deficit round-robin) dequeue across "
               "tenants instead of global FIFO");
  cli.add_option("stall-timeout-ms",
                 "Drop a peer stalled mid-frame this long; -1 = never",
                 "5000");
  cli.add_option("tier-cap",
                 "Best tier any request may run at "
                 "(emts|heuristic|cpa_one_shot)", "emts");
  try {
    if (!cli.parse(argc, argv)) return 0;

    serve::ServeConfig cfg;
    cfg.socket_path = cli.get("socket");
    cfg.journal_path = cli.get("journal");
    cfg.queue_capacity = static_cast<std::size_t>(cli.get_int("capacity"));
    cfg.workers = static_cast<std::size_t>(cli.get_int("workers"));
    cfg.base_seed = cli.get_u64("seed");
    cfg.emts_budget_seconds = cli.get_double("emts-budget");
    cfg.default_deadline_seconds = cli.get_double("deadline");
    cfg.max_attempts = static_cast<int>(cli.get_int("max-attempts"));
    cfg.tiers.p95_budget_seconds = cli.get_double("p95-budget");
    cfg.engine_pool.capacity =
        static_cast<std::size_t>(cli.get_int("pool-capacity"));
    cfg.journal_rotation.max_segment_bytes =
        static_cast<std::size_t>(cli.get_int("rotate-bytes"));
    cfg.journal_rotation.max_segment_records =
        static_cast<std::size_t>(cli.get_int("rotate-records"));
    cfg.tenant_default_quota.max_queued =
        static_cast<std::size_t>(cli.get_int("tenant-queued"));
    cfg.tenant_default_quota.max_in_flight =
        static_cast<std::size_t>(cli.get_int("tenant-in-flight"));
    parse_quotas(cli.get("quotas"), cfg);
    cfg.fair_dequeue = cli.get_flag("fair");
    cfg.stall_timeout_ms =
        static_cast<int>(cli.get_int("stall-timeout-ms"));
    cfg.tier_cap = serve::service_tier_from_name(cli.get("tier-cap"));

    CancellationToken shutdown;
    install_signal_cancellation(&shutdown);
    cfg.shutdown = &shutdown;

    serve::ServeServer server(cfg);
    server.start();
    std::printf("ptgsched_serve: listening on %s (journal %s, "
                "%zu workers, queue %zu)\n",
                cfg.socket_path.c_str(), cfg.journal_path.c_str(),
                cfg.workers, cfg.queue_capacity);
    std::fflush(stdout);
    server.wait();
    install_signal_cancellation(nullptr);

    const serve::ServeCounters c = server.counters();
    std::printf("ptgsched_serve: stopped — submitted %llu, completed "
                "%llu, cancelled %llu, failed %llu, recovered %llu\n",
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.cancelled),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.recovered));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptgsched_serve: %s\n", e.what());
    return 1;
  }
}
