// workflow_scheduler: a command-line PTG scheduler — the "simulator" of
// Section IV as a tool. Reads a PTG description (JSON) and a platform
// (preset name or platform file), runs the chosen scheduling algorithm,
// and writes the schedule as JSON plus an optional SVG Gantt chart.
//
//   ./examples/workflow_scheduler my_workflow.json --platform=grelon
//       --algorithm=emts10 --model=model2 --svg=schedule.svg
//
// Generate an input file with examples/dag_studio.

#include <cstdio>
#include <filesystem>

#include "emts/emts.hpp"
#include "heuristics/allocation_heuristic.hpp"
#include "ptg/io.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/validate.hpp"
#include "support/cli.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli(
      "workflow_scheduler",
      "Schedule a PTG from a JSON description onto a homogeneous cluster.");
  cli.add_positional("ptg", "Path to the PTG description (JSON)");
  cli.add_option("platform",
                 "Cluster preset (chti|grelon) or a platform JSON file",
                 "grelon");
  cli.add_option("algorithm",
                 "one | cpa | hcpa | mcpa | mcpa2 | delta | emts5 | emts10",
                 "emts5");
  cli.add_option("model", "model1 | model2 | downey", "model1");
  cli.add_option("seed", "RNG seed for the EMTS variants", "1");
  cli.add_option("out", "Write the schedule JSON here (empty = stdout only)",
                 "");
  cli.add_option("svg", "Write an SVG Gantt chart here (empty = none)", "");
  cli.add_flag("gantt", "Print an ASCII Gantt chart");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const Ptg g = load_ptg(cli.positional("ptg"));
    const std::string platform_arg = cli.get("platform");
    const Cluster cluster = std::filesystem::exists(platform_arg)
                                ? Cluster::load(platform_arg)
                                : platform_by_name(platform_arg);
    const auto model = make_model(cli.get("model"));
    const std::string algorithm = cli.get("algorithm");

    Allocation alloc;
    Schedule schedule;
    if (algorithm == "emts5" || algorithm == "emts10") {
      EmtsConfig cfg =
          algorithm == "emts5" ? emts5_config() : emts10_config();
      cfg.seed = cli.get_u64("seed");
      const EmtsResult r = Emts(cfg).schedule(g, *model, cluster);
      alloc = r.best_allocation;
      schedule = r.schedule;
      std::printf("seeds:");
      for (const auto& s : r.seeds) {
        std::printf(" %s=%.3fs", s.heuristic.c_str(), s.makespan);
      }
      std::printf("\nevaluations: %zu in %.1f ms\n", r.es.evaluations,
                  r.total_seconds * 1e3);
    } else {
      alloc = make_heuristic(algorithm)->allocate(g, *model, cluster);
      schedule = map_allocation(g, alloc, *model, cluster);
    }
    validate_schedule(schedule, g, alloc, *model, cluster);

    const ScheduleMetrics m = compute_metrics(schedule, g);
    std::printf(
        "graph: %s (%zu tasks)\nplatform: %s (%d x %.1f GFLOPS)\n"
        "algorithm: %s  model: %s\nmakespan: %.3f s  utilization: %.1f%%\n",
        g.name().c_str(), g.num_tasks(), cluster.name().c_str(),
        cluster.num_processors(), cluster.gflops(), algorithm.c_str(),
        model->name().c_str(), m.makespan, m.utilization * 100.0);

    if (cli.get_flag("gantt")) {
      std::fputs(gantt_ascii(schedule).c_str(), stdout);
    }
    if (!cli.get("out").empty()) {
      schedule.to_json().write_file(cli.get("out"));
      std::printf("schedule written to %s\n", cli.get("out").c_str());
    }
    if (!cli.get("svg").empty()) {
      write_gantt_svg(schedule, g, cli.get("svg"));
      std::printf("gantt written to %s\n", cli.get("svg").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "workflow_scheduler: %s\n", e.what());
    return 1;
  }
}
