// serve_loadgen: a load generator for ptgsched_serve — the moldable-job
// submission scenario (Section II-A) at traffic scale. Where the
// moldable_job_submission example asks "what should ONE user request?",
// this one plays a whole submission front-end: N concurrent clients each
// firing M scheduling requests at a running daemon, riding out
// backpressure with the server's retry_after hints, and reporting what
// the paper's schedulers look like as a *service*: latency percentiles,
// shed/retry counts, and the degradation tiers the daemon served.
//
//   $ ptgsched_serve --socket /tmp/ptg.sock &
//   $ serve_loadgen --socket /tmp/ptg.sock --clients 4 --requests 32

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

using namespace ptgsched;
using namespace ptgsched::serve;

namespace {

struct ClientReport {
  std::vector<double> latencies;  // accepted → terminal, seconds
  int done = 0;
  int cancelled = 0;
  int failed = 0;
  int rejected = 0;  // still overloaded after retries
};

/// The spec mix: four job shapes cycled per request index, so the daemon
/// sees repeats (warm engine-pool hits) and variety (distinct problems).
JobSpec spec_for(int index, std::uint64_t seed) {
  static const char* kClasses[] = {"layered", "irregular", "fft",
                                   "strassen"};
  JobSpec spec;
  spec.cls = kClasses[index % 4];
  spec.tasks = 20 + 10 * (index % 3);
  spec.platform = "chti";
  spec.model = "model1";
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("serve_loadgen",
                "Fire concurrent scheduling requests at a running "
                "ptgsched_serve daemon and report service metrics.");
  cli.add_option("socket", "Daemon socket path", "/tmp/ptgsched.sock");
  cli.add_option("clients", "Concurrent client connections", "4");
  cli.add_option("requests", "Requests per client", "16");
  cli.add_option("seed", "Workload seed", "42");
  cli.add_option("deadline", "Per-request deadline [s]; 0 = none", "0");
  cli.add_option("tenant", "Tenant name prefix", "loadgen");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string socket_path = cli.get("socket");
    const int clients = static_cast<int>(cli.get_int("clients"));
    const int requests = static_cast<int>(cli.get_int("requests"));
    const std::uint64_t seed = cli.get_u64("seed");
    const double deadline = cli.get_double("deadline");
    const std::string tenant_prefix = cli.get("tenant");

    std::vector<ClientReport> reports(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    const WallTimer wall;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientReport& report = reports[static_cast<std::size_t>(c)];
        ServeClient client(socket_path);
        const std::string tenant =
            tenant_prefix + "-" + std::to_string(c);
        for (int r = 0; r < requests; ++r) {
          const WallTimer timer;
          const SubmitOutcome o = client.submit_with_retry(
              spec_for(r, seed), tenant, deadline, /*max_attempts=*/8,
              /*backoff_seed=*/seed + static_cast<std::uint64_t>(c));
          if (!o.accepted) {
            ++report.rejected;
            continue;
          }
          const auto final_status = client.wait_terminal(o.id);
          if (!final_status.has_value()) continue;
          report.latencies.push_back(timer.seconds());
          const std::string& s = final_status->at("status").as_string();
          if (s == "done") {
            ++report.done;
          } else if (s == "cancelled") {
            ++report.cancelled;
          } else {
            ++report.failed;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = wall.seconds();

    std::vector<double> latencies;
    int done = 0, cancelled = 0, failed = 0, rejected = 0;
    for (const ClientReport& r : reports) {
      latencies.insert(latencies.end(), r.latencies.begin(),
                       r.latencies.end());
      done += r.done;
      cancelled += r.cancelled;
      failed += r.failed;
      rejected += r.rejected;
    }

    std::printf("%d clients x %d requests against %s in %.2f s\n\n",
                clients, requests, socket_path.c_str(), elapsed);
    std::vector<std::vector<std::string>> table;
    table.push_back({"metric", "value"});
    table.push_back({"done", std::to_string(done)});
    table.push_back({"cancelled", std::to_string(cancelled)});
    table.push_back({"failed", std::to_string(failed)});
    table.push_back({"rejected after retries", std::to_string(rejected)});
    if (!latencies.empty()) {
      table.push_back(
          {"latency p50 [s]",
           strfmt("%.4f", percentile(latencies, 50.0))});
      table.push_back(
          {"latency p95 [s]",
           strfmt("%.4f", percentile(latencies, 95.0))});
      table.push_back(
          {"latency p99 [s]",
           strfmt("%.4f", percentile(latencies, 99.0))});
      table.push_back(
          {"throughput [req/s]",
           strfmt("%.1f", static_cast<double>(latencies.size()) /
                              elapsed)});
    }
    std::fputs(render_table(table).c_str(), stdout);

    // The daemon's own view (tiers served, sheds, pool hits).
    ServeClient client(socket_path);
    std::printf("\ndaemon stats: %s\n", client.stats().dump().c_str());
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_loadgen: %s\n", e.what());
    return 1;
  }
}
