// dag_studio: workload generator CLI. Produces the paper's PTG classes
// (FFT, Strassen, DAGGEN-style layered/irregular) as JSON files consumable
// by workflow_scheduler, plus optional Graphviz DOT for visualization.
//
//   ./examples/dag_studio fft --points=16 --out=fft.json --dot=fft.dot
//   ./examples/dag_studio irregular --tasks=100 --jump=2 --out=g.json

#include <cstdio>

#include "daggen/corpus.hpp"
#include "ptg/algorithms.hpp"
#include "ptg/io.hpp"
#include "support/cli.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli("dag_studio",
                "Generate parallel task graphs (fft | strassen | layered | "
                "irregular).");
  cli.add_positional("class", "Workload class");
  cli.add_option("out", "Output JSON path", "ptg.json");
  cli.add_option("dot", "Optional Graphviz DOT output path", "");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("points", "FFT input points (power of two)", "16");
  cli.add_option("depth", "Strassen recursion depth", "1");
  cli.add_option("tasks", "Task count (layered/irregular)", "100");
  cli.add_option("width", "DAGGEN width parameter (0, 1]", "0.5");
  cli.add_option("regularity", "DAGGEN regularity [0, 1]", "0.5");
  cli.add_option("density", "DAGGEN density (0, 1]", "0.5");
  cli.add_option("jump", "DAGGEN jump (0 = layered)", "0");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string cls = cli.positional("class");
    Rng rng(cli.get_u64("seed"));

    Ptg g;
    if (cls == "fft") {
      g = make_fft_ptg(static_cast<int>(cli.get_int("points")), rng);
    } else if (cls == "strassen") {
      g = make_strassen_ptg(rng, static_cast<int>(cli.get_int("depth")));
    } else if (cls == "layered" || cls == "irregular") {
      RandomDagParams params;
      params.num_tasks = static_cast<int>(cli.get_int("tasks"));
      params.width = cli.get_double("width");
      params.regularity = cli.get_double("regularity");
      params.density = cli.get_double("density");
      params.jump = cls == "layered"
                        ? 0
                        : std::max(1, static_cast<int>(cli.get_int("jump")));
      g = make_random_ptg(params, rng);
    } else {
      std::fprintf(stderr, "dag_studio: unknown class '%s'\n", cls.c_str());
      return 1;
    }

    save_ptg(g, cli.get("out"));
    std::printf(
        "generated '%s': %zu tasks, %zu edges, %d levels, width %zu, "
        "%.3g GFLOP total\n-> %s\n",
        g.name().c_str(), g.num_tasks(), g.num_edges(),
        num_precedence_levels(g), max_level_width(g), g.total_flops() / 1e9,
        cli.get("out").c_str());

    if (!cli.get("dot").empty()) {
      Json::parse("{}");  // ensure support lib linked even in minimal builds
      std::FILE* f = std::fopen(cli.get("dot").c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "dag_studio: cannot write %s\n",
                     cli.get("dot").c_str());
        return 1;
      }
      const std::string dot = ptg_to_dot(g);
      std::fwrite(dot.data(), 1, dot.size(), f);
      std::fclose(f);
      std::printf("-> %s (render with: dot -Tsvg)\n", cli.get("dot").c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dag_studio: %s\n", e.what());
    return 1;
  }
}
