// model_explorer: inspect execution-time models interactively — the tool
// you reach for before trusting a scheduler with a model. Prints T(v, p),
// speed-up, and efficiency for p = 1..P for a configurable task under any
// registered model, and flags every non-monotonic step.
//
//   ./examples/model_explorer --model=model2 --flops=1e12 --alpha=0.05 \
//       --platform=grelon --max-procs=32

#include <cstdio>

#include "model/execution_time.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace ptgsched;

int main(int argc, char** argv) {
  CliParser cli("model_explorer",
                "Tabulate an execution-time model over processor counts.");
  cli.add_option("model", "model1 | model2 | downey", "model2");
  cli.add_option("platform", "chti | grelon", "grelon");
  cli.add_option("flops", "Task work in FLOP", "1e12");
  cli.add_option("alpha", "Serial fraction in [0, 1]", "0.05");
  cli.add_option("max-procs", "Largest allocation to tabulate (0 = P)", "0");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const Cluster cluster = platform_by_name(cli.get("platform"));
    const auto model = make_model(cli.get("model"));

    Task t;
    t.name = "probe";
    t.flops = cli.get_double("flops");
    t.alpha = cli.get_double("alpha");
    t.data_size = t.flops;

    int max_p = static_cast<int>(cli.get_int("max-procs"));
    if (max_p <= 0 || max_p > cluster.num_processors()) {
      max_p = cluster.num_processors();
    }

    std::printf("model '%s' on %s (%d x %.1f GFLOPS), task %.3g FLOP, "
                "alpha %.3f\n\n",
                model->name().c_str(), cluster.name().c_str(),
                cluster.num_processors(), cluster.gflops(), t.flops, t.alpha);

    const double t1 = model->time(t, 1, cluster);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"p", "T(v,p) [s]", "speedup", "efficiency", "note"});
    double prev = t1;
    int best_p = 1;
    double best_t = t1;
    for (int p = 1; p <= max_p; ++p) {
      const double tp = model->time(t, p, cluster);
      std::string note;
      if (p > 1 && tp > prev) note = "<- SLOWER than p-1";
      if (tp < best_t) {
        best_t = tp;
        best_p = p;
      }
      rows.push_back({std::to_string(p), strfmt("%.4f", tp),
                      strfmt("%.2f", t1 / tp),
                      strfmt("%.2f", t1 / tp / p), note});
      prev = tp;
    }
    std::fputs(render_table(rows).c_str(), stdout);
    std::printf("\nbest allocation: p = %d (T = %.4f s, speedup %.2f)\n",
                best_p, best_t, t1 / best_t);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "model_explorer: %s\n", e.what());
    return 1;
  }
}
